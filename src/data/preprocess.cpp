#include "data/preprocess.h"

#include <cmath>

#include "linalg/stats.h"

namespace mlaas {

void impute_median(Dataset& dataset) {
  Matrix& x = dataset.x();
  for (std::size_t c = 0; c < x.cols(); ++c) {
    std::vector<double> present;
    present.reserve(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
      if (!std::isnan(x(r, c))) present.push_back(x(r, c));
    }
    const double fill = present.empty() ? 0.0 : median(present);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      if (std::isnan(x(r, c))) x(r, c) = fill;
    }
  }
}

std::size_t count_missing(const Dataset& dataset) {
  std::size_t n = 0;
  for (double v : dataset.x().data()) n += std::isnan(v) ? 1 : 0;
  return n;
}

}  // namespace mlaas
