// CSV import/export for datasets.
//
// Import follows the paper's preprocessing conventions (§3.1): string-valued
// columns are treated as categorical and mapped {C1..CN} -> {1..N} in order
// of first appearance; empty cells and "?" become NaN (imputed later).
//
// Cells may be double-quoted per RFC 4180: a quoted cell keeps embedded
// delimiters and leading/trailing spaces, and '""' inside it is a literal
// quote.  CRLF line endings are accepted.  Embedded line breaks inside
// quotes are not (the reader is line-oriented).
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"

namespace mlaas {

struct CsvOptions {
  bool has_header = true;
  char delimiter = ',';
  /// Index of the label column; -1 means the last column.
  int label_column = -1;
  /// Label value mapped to class 1; empty means "second distinct value seen".
  std::string positive_label;
};

Dataset load_csv(std::istream& in, const CsvOptions& options = {});
Dataset load_csv_file(const std::string& path, const CsvOptions& options = {});

void save_csv(const Dataset& dataset, std::ostream& out);
void save_csv_file(const Dataset& dataset, const std::string& path);

}  // namespace mlaas
