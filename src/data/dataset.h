// Dataset: a labeled binary-classification table.
//
// Mirrors the corpus layout of §3.1 of the paper: numeric and categorical
// features (categorical already mapped {C1..CN} -> {1..N}), optional missing
// values (stored as NaN until imputed), and metadata describing provenance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace mlaas {

enum class ColumnType { kNumeric, kCategorical };

enum class Domain {
  kLifeScience,
  kComputerGames,
  kSynthetic,
  kSocialScience,
  kPhysicalScience,
  kFinancial,
  kOther,
};

std::string to_string(Domain d);

struct DatasetMeta {
  std::string id;    // stable identifier, e.g. "lifesci-007"
  std::string name;  // human-readable
  Domain domain = Domain::kSynthetic;
  // Nominal (pre-cap) corpus statistics; used by the Fig-3 reproduction so
  // the reported size/dimensionality CDFs match the paper even when actual
  // generation is capped for runtime (see DESIGN.md "Runtime scaling").
  std::size_t nominal_samples = 0;
  std::size_t nominal_features = 0;
  // Generation-time ground truth, used only for analysis/validation, never
  // visible to platforms: whether the generating process was linear.
  bool linear_ground_truth = false;
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(Matrix x, std::vector<int> y);
  Dataset(Matrix x, std::vector<int> y, std::vector<ColumnType> column_types);

  std::size_t n_samples() const { return y_.size(); }
  std::size_t n_features() const { return x_.cols(); }

  const Matrix& x() const { return x_; }
  Matrix& x() { return x_; }
  const std::vector<int>& y() const { return y_; }
  std::vector<int>& y() { return y_; }

  const std::vector<ColumnType>& column_types() const { return types_; }
  ColumnType column_type(std::size_t c) const { return types_[c]; }

  const std::vector<std::string>& feature_names() const { return names_; }
  void set_feature_names(std::vector<std::string> names);

  DatasetMeta& meta() { return meta_; }
  const DatasetMeta& meta() const { return meta_; }

  /// True if any cell is NaN.
  bool has_missing() const;

  /// Fraction of samples labeled 1.
  double positive_fraction() const;

  /// Rows selected by index, preserving schema and metadata.
  Dataset subset(std::span<const std::size_t> idx) const;

  /// Validate invariants (consistent sizes, labels in {0,1}); throws on
  /// violation.  Called by generators and CSV loading.
  void check() const;

 private:
  Matrix x_;
  std::vector<int> y_;
  std::vector<ColumnType> types_;
  std::vector<std::string> names_;
  DatasetMeta meta_;
};

}  // namespace mlaas
