// Train/test and cross-validation splits.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace mlaas {

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Random split with the paper's 70/30 default (§3.1).  Stratified: both
/// splits preserve the class ratio (and each side receives at least one
/// sample of each class present, when sizes allow).
TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                std::uint64_t seed, bool stratified = true);

/// K-fold index assignment: returns fold id in [0,k) per sample, stratified.
std::vector<int> kfold_assignment(const std::vector<int>& y, int k, std::uint64_t seed);

}  // namespace mlaas
