#include "data/split.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace mlaas {

TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                std::uint64_t seed, bool stratified) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("train_test_split: fraction must be in (0,1)");
  }
  const std::size_t n = dataset.n_samples();
  if (n < 2) throw std::invalid_argument("train_test_split: need at least 2 samples");
  Rng rng(seed);

  std::vector<std::size_t> test_idx, train_idx;
  if (stratified) {
    std::vector<std::size_t> by_class[2];
    for (std::size_t i = 0; i < n; ++i) by_class[dataset.y()[i]].push_back(i);
    for (auto& cls : by_class) {
      rng.shuffle(cls);
      std::size_t n_test = static_cast<std::size_t>(
          std::llround(test_fraction * static_cast<double>(cls.size())));
      // Keep at least one sample of the class on each side when possible.
      if (cls.size() >= 2) {
        n_test = std::clamp<std::size_t>(n_test, 1, cls.size() - 1);
      } else {
        n_test = 0;  // lone sample goes to train
      }
      for (std::size_t i = 0; i < cls.size(); ++i) {
        (i < n_test ? test_idx : train_idx).push_back(cls[i]);
      }
    }
  } else {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    rng.shuffle(idx);
    std::size_t n_test = static_cast<std::size_t>(
        std::llround(test_fraction * static_cast<double>(n)));
    n_test = std::clamp<std::size_t>(n_test, 1, n - 1);
    test_idx.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n_test));
    train_idx.assign(idx.begin() + static_cast<std::ptrdiff_t>(n_test), idx.end());
  }
  std::sort(train_idx.begin(), train_idx.end());
  std::sort(test_idx.begin(), test_idx.end());
  return {dataset.subset(train_idx), dataset.subset(test_idx)};
}

std::vector<int> kfold_assignment(const std::vector<int>& y, int k, std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("kfold_assignment: k must be >= 2");
  Rng rng(seed);
  std::vector<int> fold(y.size(), 0);
  std::vector<std::size_t> by_class[2];
  for (std::size_t i = 0; i < y.size(); ++i) by_class[y[i] == 1 ? 1 : 0].push_back(i);
  for (auto& cls : by_class) {
    rng.shuffle(cls);
    for (std::size_t i = 0; i < cls.size(); ++i) {
      fold[cls[i]] = static_cast<int>(i % static_cast<std::size_t>(k));
    }
  }
  return fold;
}

}  // namespace mlaas
