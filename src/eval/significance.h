// Statistical comparison machinery (Demšar 2006; García & Herrera 2008 —
// the methodology the paper's evaluation design cites in §7 [19, 20, 29]).
//
// - Wilcoxon signed-rank test: paired per-dataset comparison of two
//   platforms/classifiers (normal approximation, two-sided).
// - Nemenyi critical difference: the post-hoc companion of the Friedman
//   test — two entities differ significantly when their average ranks are
//   more than CD apart.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "eval/friedman.h"

namespace mlaas {

struct WilcoxonResult {
  double w_statistic = 0.0;  // min(W+, W-)
  double z = 0.0;            // normal approximation
  double p_value = 1.0;      // two-sided
  std::size_t n_effective = 0;  // pairs with non-zero difference
  bool significant_at_05() const { return p_value < 0.05; }
};

/// Paired Wilcoxon signed-rank test over per-dataset scores (ties on
/// |difference| share fractional ranks; zero differences are dropped).
WilcoxonResult wilcoxon_signed_rank(std::span<const double> a, std::span<const double> b);

/// Standard normal CDF.
double normal_cdf(double z);

/// Nemenyi critical difference for k entities over n datasets at alpha=0.05
/// (two ranks differing by more than this are significantly different).
/// Supported k: 2..10; throws std::invalid_argument otherwise.
double nemenyi_critical_difference(std::size_t k, std::size_t n);

struct PairwiseComparison {
  std::string a, b;
  WilcoxonResult wilcoxon;
  double rank_difference = 0.0;  // |Friedman rank(a) - rank(b)|
  bool nemenyi_significant = false;
};

/// All-pairs comparison: scores[d][e] as in friedman_ranking.
std::vector<PairwiseComparison> pairwise_comparisons(
    const std::vector<std::string>& entities,
    const std::vector<std::vector<double>>& scores);

}  // namespace mlaas
