// Write-ahead cell journal for crash-safe, resumable campaigns.
//
// The paper's measurement campaign ran against live cloud endpoints for ~5
// months — inevitably restarting after provider outages and script crashes.
// A campaign that loses every finished cell on a crash cannot reproduce
// that.  CellJournal gives run_campaign an append-only, fsync'd log: one
// line per finished (dataset, platform, config) cell in the exact cache-v2
// row format, under the same fingerprint header the measurement cache uses,
// plus a completion marker per (dataset, platform) session.
//
// Resume semantics: sessions whose completion marker reached disk are
// restored verbatim; a session caught mid-flight is re-run from scratch and
// its partial rows are discarded.  Sessions are independently seeded, so the
// resumed table is bit-identical to an uninterrupted run (wall-clock
// train_seconds excepted).  The session — not the cell — is the resume unit
// because cells within a session share one seeded request stream (rate
// window, fault RNG, simulated clock); replaying half a stream would change
// the other half.  A crash therefore loses at most `threads` sessions of
// work, never the campaign.
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "eval/measurement.h"

namespace mlaas {

class CellJournal {
 public:
  /// What a journal holds for one resumable (fully marked) session.
  struct Restored {
    /// session_key(dataset, platform) -> rows in execution order.
    std::map<std::string, std::vector<Measurement>> sessions;
    std::size_t cells = 0;      // rows restorable from complete sessions
    std::size_t discarded = 0;  // partial-session rows dropped
  };

  static std::string session_key(const std::string& dataset_id,
                                 const std::string& platform);

  /// Parse a journal written under `fingerprint`.  nullopt when the file is
  /// missing, unreadable, or carries a different fingerprint (a stale
  /// journal must never seed a campaign with different knobs).  Malformed
  /// trailing lines — the torn tail of a crash — are discarded, not fatal.
  static std::optional<Restored> load(const std::string& path,
                                      const std::string& fingerprint);

  /// Open for appending.  `truncate` starts fresh (also used when the
  /// on-disk fingerprint does not match); otherwise rows accumulate after
  /// the existing content.  Throws std::runtime_error if the file cannot be
  /// opened.
  CellJournal(std::string path, const std::string& fingerprint, bool truncate);
  ~CellJournal();

  CellJournal(const CellJournal&) = delete;
  CellJournal& operator=(const CellJournal&) = delete;

  /// Append one finished cell and fsync (the write-ahead guarantee: a cell
  /// acknowledged here survives a crash).  Thread-safe.
  void append_cell(const Measurement& m);
  /// Mark a (dataset, platform) session complete and fsync.  Thread-safe.
  void append_session_done(const std::string& dataset_id, const std::string& platform);
  /// Invalidate every earlier journal row of a session; written before a
  /// session (re-)runs live so partial rows from a crashed run are never
  /// double-counted.  Thread-safe.
  void append_session_reset(const std::string& dataset_id, const std::string& platform);

  /// Append a whole finished session as one atomic block — reset marker,
  /// every row, done marker — with a single fsync.  This is what the
  /// session-level scheduler uses: the session is the resume unit, so
  /// journaling cell by cell buys no extra crash safety and costs one fsync
  /// per cell.  Thread-safe.
  void append_session_block(const std::string& dataset_id, const std::string& platform,
                            const std::vector<Measurement>& rows);

  std::size_t cells_journaled() const;

  const std::string& path() const { return path_; }

  /// Delete a journal file (after the campaign's cache has been written the
  /// journal has served its purpose).  Missing files are fine.
  static void remove(const std::string& path);

 private:
  void write_line(const std::string& line);

  std::string path_;
  FILE* file_ = nullptr;
  mutable std::mutex mu_;
  std::size_t cells_ = 0;
};

}  // namespace mlaas
