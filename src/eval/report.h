// Paper-style table rendering for the bench binaries.
#pragma once

#include <string>
#include <vector>

#include "eval/aggregate.h"
#include "eval/attribution.h"
#include "eval/subset_analysis.h"
#include "eval/variation.h"

namespace mlaas {

/// Table 3 style: platform, avg Friedman rank, then metric (rank) cells.
std::string render_platform_summaries(const std::string& title,
                                      const std::vector<PlatformSummary>& summaries);

/// Figure 4 style: baseline vs optimized per platform in complexity order.
std::string render_fig4(const std::vector<PlatformSummary>& baseline,
                        const std::vector<PlatformSummary>& optimized,
                        const std::vector<std::string>& platform_order);

/// Figure 5 style: relative improvement per platform per control dimension.
std::string render_fig5(const std::vector<ControlImprovement>& improvements);

/// Figure 6 style: per-platform variation boxes.
std::string render_fig6(const std::vector<VariationSummary>& variations);

/// Figure 7 style: normalized per-dimension variation.
std::string render_fig7(const std::vector<DimensionVariation>& variations);

/// Figure 8 style: best-of-k curves.
std::string render_fig8(const std::vector<SubsetCurve>& curves);

/// Table 4 style: top classifiers with win shares.
std::string render_table4(const std::string& title,
                          const std::vector<std::string>& platforms,
                          const std::vector<std::vector<std::pair<std::string, double>>>& tops);

}  // namespace mlaas
