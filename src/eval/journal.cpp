#include "eval/journal.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace mlaas {

namespace {

// Session markers share the file with cell rows; the prefix cannot collide
// with a dataset id because rows never start with "=".  A reset marker
// invalidates every earlier row of its session: the driver writes one
// before (re-)running a session live, so partial rows surviving from a
// crashed run are never double-counted once the session re-runs to
// completion in a later append pass.
constexpr const char* kSessionDonePrefix = "= done\t";
constexpr const char* kSessionResetPrefix = "= reset\t";

void fsync_file(FILE* f) {
  if (std::fflush(f) != 0) {
    throw std::runtime_error("CellJournal: flush failed");
  }
#ifndef _WIN32
  ::fsync(::fileno(f));
#endif
}

}  // namespace

std::string CellJournal::session_key(const std::string& dataset_id,
                                     const std::string& platform) {
  return dataset_id + "\t" + platform;
}

std::optional<CellJournal::Restored> CellJournal::load(const std::string& path,
                                                       const std::string& fingerprint) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  if (line.rfind("# ", 0) != 0 || line.substr(2) != fingerprint) return std::nullopt;

  std::map<std::string, std::vector<Measurement>> pending;
  Restored restored;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.rfind(kSessionResetPrefix, 0) == 0) {
      const std::string key = line.substr(std::string(kSessionResetPrefix).size());
      restored.discarded += pending[key].size();
      pending.erase(key);
      auto it = restored.sessions.find(key);
      if (it != restored.sessions.end()) {
        restored.discarded += it->second.size();
        restored.sessions.erase(it);
      }
      continue;
    }
    if (line.rfind(kSessionDonePrefix, 0) == 0) {
      const std::string key = line.substr(std::string(kSessionDonePrefix).size());
      // A marker for a session with no rows is legal: every cell may have
      // been rejected (bad-request), leaving nothing to journal.
      auto it = pending.find(key);
      auto& done = restored.sessions[key];
      if (it != pending.end()) {
        done = std::move(it->second);
        pending.erase(it);
      }
      continue;
    }
    try {
      Measurement m =
          measurement_row_from_tsv(line, path + ":" + std::to_string(line_no));
      pending[session_key(m.dataset_id, m.platform)].push_back(std::move(m));
    } catch (const std::exception&) {
      // The torn tail of a crashed append: everything before it is intact
      // (appends are fsync'd in order), so stop here and keep what parsed.
      break;
    }
  }
  for (const auto& [key, rows] : restored.sessions) restored.cells += rows.size();
  for (const auto& [key, rows] : pending) restored.discarded += rows.size();
  return restored;
}

CellJournal::CellJournal(std::string path, const std::string& fingerprint, bool truncate)
    : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), truncate ? "w" : "a");
  if (file_ == nullptr) {
    throw std::runtime_error("CellJournal: cannot open " + path_);
  }
  if (truncate) {
    write_line("# " + fingerprint);
  }
}

CellJournal::~CellJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void CellJournal::write_line(const std::string& line) {
  if (std::fputs(line.c_str(), file_) < 0 || std::fputc('\n', file_) == EOF) {
    throw std::runtime_error("CellJournal: write failed for " + path_);
  }
  fsync_file(file_);
}

void CellJournal::append_cell(const Measurement& m) {
  std::lock_guard lock(mu_);
  write_line(measurement_row_to_tsv(m));
  ++cells_;
}

void CellJournal::append_session_done(const std::string& dataset_id,
                                      const std::string& platform) {
  std::lock_guard lock(mu_);
  write_line(kSessionDonePrefix + session_key(dataset_id, platform));
}

void CellJournal::append_session_reset(const std::string& dataset_id,
                                       const std::string& platform) {
  std::lock_guard lock(mu_);
  write_line(kSessionResetPrefix + session_key(dataset_id, platform));
}

void CellJournal::append_session_block(const std::string& dataset_id,
                                       const std::string& platform,
                                       const std::vector<Measurement>& rows) {
  const std::string key = session_key(dataset_id, platform);
  std::string block = kSessionResetPrefix + key + '\n';
  for (const auto& m : rows) block += measurement_row_to_tsv(m) + '\n';
  block += kSessionDonePrefix + key + '\n';
  std::lock_guard lock(mu_);
  if (std::fputs(block.c_str(), file_) < 0) {
    throw std::runtime_error("CellJournal: write failed for " + path_);
  }
  fsync_file(file_);
  cells_ += rows.size();
}

std::size_t CellJournal::cells_journaled() const {
  std::lock_guard lock(mu_);
  return cells_;
}

void CellJournal::remove(const std::string& path) { std::remove(path.c_str()); }

}  // namespace mlaas
