#include "eval/family.h"

#include "ml/registry.h"
#include "platform/local_sklearn.h"

namespace mlaas {

FamilyScores split_by_family(const MeasurementTable& table) {
  FamilyScores scores;
  for (const auto& m : table.rows()) {
    if (!m.ok || m.classifier == "auto") continue;
    (classifier_is_linear(m.classifier) ? scores.linear_f : scores.nonlinear_f)
        .push_back(m.test.f_score);
  }
  return scores;
}

FamilyScores family_gap_on_probe(const Dataset& probe, const MeasurementOptions& options) {
  LocalSklearnPlatform local;
  MeasurementTable table;
  for (const auto& config : enumerate_configs(local, options)) {
    if (auto m = measure_one(probe, local, config, options)) {
      if (m->ok) table.add(std::move(*m));
    }
  }
  return split_by_family(table);
}

}  // namespace mlaas
