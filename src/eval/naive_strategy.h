// The naïve classifier-switching strategy (§6.3, Table 6, Figure 14).
//
// For every dataset, train a default-parameter Logistic Regression and a
// default-parameter Decision Tree (no feature selection), and pick the one
// with the higher test F-score.  Comparing this trivial strategy against
// Google's and ABM's automated choices quantifies how much the black-box
// platforms' hidden optimizations leave on the table.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "eval/family_predictor.h"
#include "eval/measurement.h"

namespace mlaas {

struct NaiveResult {
  std::string dataset_id;
  double lr_f = 0.0;             // default logistic regression
  double dt_f = 0.0;             // default decision tree
  ClassifierFamily chosen = ClassifierFamily::kLinear;
  double naive_f = 0.0;          // max(lr_f, dt_f)
};

/// Train LR and DT with default parameters on each corpus dataset (same
/// 70/30 split as the platform measurements).
std::vector<NaiveResult> run_naive_strategy(const std::vector<Dataset>& corpus,
                                            const MeasurementOptions& options);

struct NaiveComparison {
  std::string platform;
  std::size_t n_datasets = 0;      // selected datasets compared
  std::size_t naive_wins = 0;
  /// Table 6 breakdown over datasets where naïve wins:
  /// wins_breakdown[naive_family][platform_family], 0 = linear.
  std::size_t wins_breakdown[2][2] = {{0, 0}, {0, 0}};
  std::vector<double> win_gaps;    // F-score gaps where naïve wins (Fig 14)
  /// Gaps restricted to datasets where naïve and the platform chose
  /// DIFFERENT families (the "could improve by switching" cases).
  std::vector<double> switch_gaps;
  /// §6.3: datasets where naïve beats the platform even against the optimal
  /// configuration of the other (unchosen) family — switching is likely the
  /// only fix.
  std::size_t switching_is_best = 0;
};

/// Compare the naïve strategy against one black-box platform on the
/// family-predictable datasets.  `optimal_other_family_f` (per dataset) is
/// the best Local-library F-score over the family the naïve strategy did
/// NOT choose; derived from `table`.
NaiveComparison compare_naive_vs_blackbox(const std::vector<NaiveResult>& naive,
                                          const std::vector<BlackBoxChoice>& choices,
                                          const MeasurementTable& table,
                                          const std::string& platform);

}  // namespace mlaas
