// Baseline / optimized aggregation (§4.1, Figure 4, Tables 3 & 4).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "eval/measurement.h"

namespace mlaas {

struct PlatformSummary {
  std::string platform;
  Metrics avg;                 // metric means across datasets
  double f_std_error = 0.0;    // standard error of the per-dataset F-scores
  // Friedman ranks across datasets (lower = consistently better).
  double rank_f = 0.0, rank_acc = 0.0, rank_prec = 0.0, rank_rec = 0.0;
  double avg_rank = 0.0;       // mean of the four ranks (Table 3 ordering)
  std::size_t n_datasets = 0;
};

/// Baseline (§3.2's zero-control reference): one row per platform.
std::vector<PlatformSummary> baseline_summary(const MeasurementTable& table);

/// Optimized (§4.1): per platform, the best configuration per dataset.
std::vector<PlatformSummary> optimized_summary(const MeasurementTable& table);

/// Table 4: per platform, the share of datasets on which each classifier
/// achieves the top F-score.  `optimized_params=false` restricts to
/// default-parameter rows (Table 4a); true allows any parameters (4b).
/// Returns classifier -> fraction-of-datasets-won, sorted descending.
std::vector<std::pair<std::string, double>> classifier_win_shares(
    const MeasurementTable& table, const std::string& platform, bool optimized_params);

/// Per-dataset best F-score for a platform (optionally filtered).
std::map<std::string, double> best_f_per_dataset(const MeasurementTable& table);

}  // namespace mlaas
