#include "eval/boundary.h"

#include <algorithm>
#include <stdexcept>

#include "data/split.h"
#include "linalg/stats.h"
#include "ml/registry.h"
#include "util/rng.h"

namespace mlaas {

BoundaryMap probe_decision_boundary(const Platform& platform, const Dataset& probe,
                                    std::uint64_t seed, int resolution) {
  if (probe.n_features() != 2) {
    throw std::invalid_argument("probe_decision_boundary: probe must have 2 features");
  }
  const auto split =
      train_test_split(probe, 0.3, derive_seed(seed, "boundary-split"), true);
  const auto model = platform.train(split.train, PipelineConfig{},
                                    derive_seed(seed, "boundary-train"));

  BoundaryMap map;
  map.resolution = resolution;
  const auto x0 = probe.x().col(0);
  const auto x1 = probe.x().col(1);
  const double mx = 0.15 * (max_value(x0) - min_value(x0));
  const double my = 0.15 * (max_value(x1) - min_value(x1));
  map.x_lo = min_value(x0) - mx;
  map.x_hi = max_value(x0) + mx;
  map.y_lo = min_value(x1) - my;
  map.y_hi = max_value(x1) + my;

  Matrix mesh(static_cast<std::size_t>(resolution) * static_cast<std::size_t>(resolution), 2);
  for (int r = 0; r < resolution; ++r) {
    const double y = map.y_lo + (map.y_hi - map.y_lo) * (r + 0.5) / resolution;
    for (int c = 0; c < resolution; ++c) {
      const double x = map.x_lo + (map.x_hi - map.x_lo) * (c + 0.5) / resolution;
      const std::size_t i =
          static_cast<std::size_t>(r) * static_cast<std::size_t>(resolution) +
          static_cast<std::size_t>(c);
      mesh(i, 0) = x;
      mesh(i, 1) = y;
    }
  }
  map.labels = model->predict(mesh);

  std::size_t pos = 0;
  for (int v : map.labels) pos += v == 1 ? 1 : 0;
  map.positive_fraction = static_cast<double>(pos) / static_cast<double>(map.labels.size());

  // Linearity: accuracy of the best linear separator on the mesh labels.
  if (pos == 0 || pos == map.labels.size()) {
    map.linear_fit_accuracy = 1.0;
  } else {
    auto lda = make_classifier("lda", ParamMap{{"shrinkage", 0.05}},
                               derive_seed(seed, "boundary-lda"));
    lda->fit(mesh, map.labels);
    const auto fitted = lda->predict(mesh);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < fitted.size(); ++i) {
      agree += fitted[i] == map.labels[i] ? 1 : 0;
    }
    map.linear_fit_accuracy = static_cast<double>(agree) / static_cast<double>(fitted.size());
  }
  return map;
}

std::string render_boundary(const BoundaryMap& map, int display_resolution) {
  std::string out;
  const int step = std::max(1, map.resolution / display_resolution);
  for (int r = map.resolution - 1; r >= 0; r -= step) {
    for (int c = 0; c < map.resolution; c += step) {
      out += map.at(r, c) == 1 ? '#' : '.';
    }
    out += '\n';
  }
  return out;
}

bool boundary_is_linear(const BoundaryMap& map, double threshold) {
  return map.linear_fit_accuracy >= threshold;
}

}  // namespace mlaas
