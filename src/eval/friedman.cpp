#include "eval/friedman.h"

#include <cmath>
#include <stdexcept>

#include "linalg/stats.h"

namespace mlaas {

FriedmanResult friedman_ranking(const std::vector<std::string>& entities,
                                const std::vector<std::vector<double>>& scores) {
  const std::size_t k = entities.size();
  if (k == 0) throw std::invalid_argument("friedman_ranking: no entities");
  FriedmanResult result;
  result.entities = entities;
  result.average_rank.assign(k, 0.0);

  for (const auto& row : scores) {
    if (row.size() != k) throw std::invalid_argument("friedman_ranking: ragged scores");
    bool ok = true;
    for (double v : row) ok = ok && std::isfinite(v);
    if (!ok) continue;
    // fractional_ranks ranks ascending; we want rank 1 = highest score.
    std::vector<double> negated(k);
    for (std::size_t e = 0; e < k; ++e) negated[e] = -row[e];
    const auto ranks = fractional_ranks(negated);
    for (std::size_t e = 0; e < k; ++e) result.average_rank[e] += ranks[e];
    ++result.n_blocks;
  }
  if (result.n_blocks == 0) return result;
  for (double& r : result.average_rank) r /= static_cast<double>(result.n_blocks);

  // Friedman chi-squared: 12n/(k(k+1)) * sum(R_j^2) - 3n(k+1).
  const double n = static_cast<double>(result.n_blocks);
  const double kk = static_cast<double>(k);
  double sum_r2 = 0.0;
  for (double r : result.average_rank) sum_r2 += r * r;
  result.chi_squared = 12.0 * n / (kk * (kk + 1.0)) * sum_r2 - 3.0 * n * (kk + 1.0);
  return result;
}

}  // namespace mlaas
