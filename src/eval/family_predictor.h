// Classifier-family inference for black-box platforms (§6.2, Figure 12).
//
// For each dataset, a meta-classifier (Random Forest, per the paper) is
// trained to predict whether an experiment used a linear or non-linear
// classifier, from nothing but the experiment's observable results
// (aggregated performance metrics).  Ground truth comes from the platforms
// that expose classifier choice (BigML, PredictionIO, Microsoft, Local).
// Datasets whose validation F-score exceeds 0.95 are "selected" as having
// family-differentiating power; the selected predictors are then applied to
// Google / ABM / Amazon measurements to infer their hidden choices.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eval/measurement.h"
#include "ml/classifier.h"
#include "platform/auto_select.h"

namespace mlaas {

/// Feature vector of one experiment row: [f, accuracy, precision, recall].
std::vector<double> family_features(const Measurement& m);

struct DatasetFamilyPredictor {
  std::string dataset_id;
  double validation_f = 0.0;  // 5-fold CV F-score on the 70% split (Fig 12)
  double test_f = 0.0;        // held-out 30% F-score
  std::shared_ptr<Classifier> model;
  bool trainable = false;     // enough rows of both families existed
};

struct FamilyPredictorReport {
  std::vector<DatasetFamilyPredictor> predictors;
  std::vector<std::string> selected;  // validation_f > threshold
};

FamilyPredictorReport train_family_predictors(const MeasurementTable& table,
                                              std::uint64_t seed,
                                              double select_threshold = 0.95);

struct BlackBoxChoice {
  std::string dataset_id;
  ClassifierFamily family = ClassifierFamily::kLinear;
  double nonlinear_fraction = 0.0;  // share of the platform's configs
                                    // predicted non-linear (Amazon analysis)
  std::size_t n_rows = 0;
};

/// Apply the selected per-dataset predictors to one black-box platform's
/// measurement rows.  The majority family across the platform's
/// configurations is reported (black boxes have one config; Amazon has its
/// PARA grid).
std::vector<BlackBoxChoice> predict_blackbox_choices(const FamilyPredictorReport& report,
                                                     const MeasurementTable& table,
                                                     const std::string& platform);

}  // namespace mlaas
