// Decision-boundary probing (§6.1, Figures 9, 10 and 13).
//
// A platform is trained on a 2-feature probe dataset (CIRCLE or LINEAR) and
// queried on a 100x100 mesh grid; the predicted-label map reveals the shape
// of the hidden classifier's decision boundary.  A linearity score (how well
// a linear separator explains the mesh labels) quantifies the shape.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "platform/platform.h"

namespace mlaas {

struct BoundaryMap {
  int resolution = 0;           // mesh is resolution x resolution
  double x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0;
  std::vector<int> labels;      // row-major, labels[r * resolution + c]
  double linear_fit_accuracy = 0.0;  // best linear explanation of the mesh
  double positive_fraction = 0.0;

  int at(int row, int col) const { return labels[static_cast<std::size_t>(row) *
                                                 static_cast<std::size_t>(resolution) +
                                                 static_cast<std::size_t>(col)]; }
};

/// Train `platform` on `probe` (which must have exactly 2 features) and map
/// its decision boundary on a mesh covering the data range plus margin.
BoundaryMap probe_decision_boundary(const Platform& platform, const Dataset& probe,
                                    std::uint64_t seed, int resolution = 100);

/// ASCII rendering ('.' = class 0, '#' = class 1) for terminal output.
std::string render_boundary(const BoundaryMap& map, int display_resolution = 40);

/// True when the mesh is explained by a linear separator with >= threshold
/// accuracy.
bool boundary_is_linear(const BoundaryMap& map, double threshold = 0.97);

}  // namespace mlaas
