#include "eval/aggregate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "eval/friedman.h"

namespace mlaas {

namespace {

/// For each platform and dataset, reduce its rows to one representative
/// Metrics via best-F selection.
std::map<std::string, std::map<std::string, Metrics>> reduce_best(
    const MeasurementTable& table) {
  std::map<std::string, std::map<std::string, Metrics>> best;  // platform -> dataset -> m
  for (const auto& row : table.rows()) {
    auto& slot = best[row.platform];
    auto [it, inserted] = slot.emplace(row.dataset_id, row.test);
    if (!inserted && row.test.f_score > it->second.f_score) it->second = row.test;
  }
  return best;
}

std::vector<PlatformSummary> summarize(
    const std::map<std::string, std::map<std::string, Metrics>>& per_platform) {
  // Intersection of datasets present for all platforms keeps the Friedman
  // blocks complete.
  std::vector<std::string> platforms;
  for (const auto& [p, _] : per_platform) platforms.push_back(p);

  std::vector<std::string> datasets;
  if (!platforms.empty()) {
    for (const auto& [d, _] : per_platform.begin()->second) {
      bool everywhere = true;
      for (const auto& [p, per_dataset] : per_platform) {
        everywhere = everywhere && per_dataset.count(d) > 0;
      }
      if (everywhere) datasets.push_back(d);
    }
  }

  auto collect = [&](auto metric_of) {
    std::vector<std::vector<double>> scores(datasets.size(),
                                            std::vector<double>(platforms.size()));
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      for (std::size_t p = 0; p < platforms.size(); ++p) {
        scores[d][p] = metric_of(per_platform.at(platforms[p]).at(datasets[d]));
      }
    }
    return friedman_ranking(platforms, scores);
  };
  const auto rank_f = collect([](const Metrics& m) { return m.f_score; });
  const auto rank_acc = collect([](const Metrics& m) { return m.accuracy; });
  const auto rank_prec = collect([](const Metrics& m) { return m.precision; });
  const auto rank_rec = collect([](const Metrics& m) { return m.recall; });

  std::vector<PlatformSummary> out;
  for (std::size_t p = 0; p < platforms.size(); ++p) {
    PlatformSummary s;
    s.platform = platforms[p];
    s.n_datasets = datasets.size();
    double sum_f2 = 0.0;
    for (const auto& d : datasets) {
      const Metrics& m = per_platform.at(platforms[p]).at(d);
      s.avg.f_score += m.f_score;
      s.avg.accuracy += m.accuracy;
      s.avg.precision += m.precision;
      s.avg.recall += m.recall;
      sum_f2 += m.f_score * m.f_score;
    }
    const double n = static_cast<double>(std::max<std::size_t>(1, datasets.size()));
    s.avg.f_score /= n;
    s.avg.accuracy /= n;
    s.avg.precision /= n;
    s.avg.recall /= n;
    const double var = std::max(0.0, sum_f2 / n - s.avg.f_score * s.avg.f_score);
    s.f_std_error = std::sqrt(var / n);
    s.rank_f = rank_f.average_rank[p];
    s.rank_acc = rank_acc.average_rank[p];
    s.rank_prec = rank_prec.average_rank[p];
    s.rank_rec = rank_rec.average_rank[p];
    s.avg_rank = (s.rank_f + s.rank_acc + s.rank_prec + s.rank_rec) / 4.0;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const PlatformSummary& a, const PlatformSummary& b) {
              return a.avg_rank < b.avg_rank;
            });
  return out;
}

}  // namespace

std::vector<PlatformSummary> baseline_summary(const MeasurementTable& table) {
  return summarize(reduce_best(table.baseline()));
}

std::vector<PlatformSummary> optimized_summary(const MeasurementTable& table) {
  return summarize(reduce_best(table));
}

std::vector<std::pair<std::string, double>> classifier_win_shares(
    const MeasurementTable& table, const std::string& platform, bool optimized_params) {
  MeasurementTable rows = table.for_platform(platform).filter([&](const Measurement& m) {
    if (m.classifier == "auto" || m.feature_step != "none") return false;
    return optimized_params || m.default_params;
  });
  // Per dataset, the classifier achieving the top F-score.
  std::map<std::string, const Measurement*> best;
  for (const auto& row : rows.rows()) {
    auto [it, inserted] = best.emplace(row.dataset_id, &row);
    if (!inserted && row.test.f_score > it->second->test.f_score) it->second = &row;
  }
  std::map<std::string, double> wins;
  for (const auto& [d, row] : best) wins[row->classifier] += 1.0;
  const double n = static_cast<double>(std::max<std::size_t>(1, best.size()));
  std::vector<std::pair<std::string, double>> out(wins.begin(), wins.end());
  for (auto& [clf, share] : out) share /= n;
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::map<std::string, double> best_f_per_dataset(const MeasurementTable& table) {
  std::map<std::string, double> best;
  for (const auto& row : table.rows()) {
    auto [it, inserted] = best.emplace(row.dataset_id, row.test.f_score);
    if (!inserted) it->second = std::max(it->second, row.test.f_score);
  }
  return best;
}

}  // namespace mlaas
