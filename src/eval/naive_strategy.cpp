#include "eval/naive_strategy.h"

#include <algorithm>

#include "data/split.h"
#include "ml/metrics.h"
#include "ml/registry.h"
#include "util/rng.h"

namespace mlaas {

std::vector<NaiveResult> run_naive_strategy(const std::vector<Dataset>& corpus,
                                            const MeasurementOptions& options) {
  std::vector<NaiveResult> out;
  out.reserve(corpus.size());
  for (const auto& dataset : corpus) {
    // Identical split to the platform measurements (§3.1).
    const auto split = train_test_split(
        dataset, options.test_fraction,
        derive_seed(options.seed, "split-" + dataset.meta().id), true);
    NaiveResult r;
    r.dataset_id = dataset.meta().id;

    auto lr = make_classifier("logistic_regression", {},
                              derive_seed(options.seed, "naive-lr-" + r.dataset_id));
    lr->fit(split.train.x(), split.train.y());
    r.lr_f = f1_score(split.test.y(), lr->predict(split.test.x()));

    auto dt = make_classifier("decision_tree", {},
                              derive_seed(options.seed, "naive-dt-" + r.dataset_id));
    dt->fit(split.train.x(), split.train.y());
    r.dt_f = f1_score(split.test.y(), dt->predict(split.test.x()));

    r.chosen = r.dt_f > r.lr_f ? ClassifierFamily::kNonLinear : ClassifierFamily::kLinear;
    r.naive_f = std::max(r.lr_f, r.dt_f);
    out.push_back(std::move(r));
  }
  return out;
}

namespace {

/// Best Local-library F-score per dataset over one classifier family.
std::map<std::string, double> best_family_f(const MeasurementTable& table,
                                            ClassifierFamily family) {
  std::map<std::string, double> best;
  const MeasurementTable local_rows = table.for_platform("Local");
  for (const auto& m : local_rows.rows()) {
    if (m.classifier == "auto") continue;
    const bool linear = classifier_is_linear(m.classifier);
    if ((family == ClassifierFamily::kLinear) != linear) continue;
    auto [it, inserted] = best.emplace(m.dataset_id, m.test.f_score);
    if (!inserted) it->second = std::max(it->second, m.test.f_score);
  }
  return best;
}

}  // namespace

NaiveComparison compare_naive_vs_blackbox(const std::vector<NaiveResult>& naive,
                                          const std::vector<BlackBoxChoice>& choices,
                                          const MeasurementTable& table,
                                          const std::string& platform) {
  std::map<std::string, const NaiveResult*> naive_by_id;
  for (const auto& r : naive) naive_by_id[r.dataset_id] = &r;

  // Platform's F-score per dataset (black boxes have a single row).
  std::map<std::string, double> platform_f;
  const MeasurementTable platform_rows = table.for_platform(platform);
  for (const auto& m : platform_rows.rows()) {
    auto [it, inserted] = platform_f.emplace(m.dataset_id, m.test.f_score);
    if (!inserted) it->second = std::max(it->second, m.test.f_score);
  }
  const auto best_linear = best_family_f(table, ClassifierFamily::kLinear);
  const auto best_nonlinear = best_family_f(table, ClassifierFamily::kNonLinear);

  NaiveComparison cmp;
  cmp.platform = platform;
  for (const auto& choice : choices) {
    auto nit = naive_by_id.find(choice.dataset_id);
    auto pit = platform_f.find(choice.dataset_id);
    if (nit == naive_by_id.end() || pit == platform_f.end()) continue;
    ++cmp.n_datasets;
    const NaiveResult& nr = *nit->second;
    const double gap = nr.naive_f - pit->second;
    if (gap <= 0.0) continue;
    ++cmp.naive_wins;
    const int ni = nr.chosen == ClassifierFamily::kLinear ? 0 : 1;
    const int pi = choice.family == ClassifierFamily::kLinear ? 0 : 1;
    ++cmp.wins_breakdown[ni][pi];
    cmp.win_gaps.push_back(gap);
    if (ni != pi) cmp.switch_gaps.push_back(gap);

    // §6.3: would the platform's family, optimally tuned, still lose?
    const auto& other = nr.chosen == ClassifierFamily::kLinear ? best_nonlinear : best_linear;
    auto oit = other.find(choice.dataset_id);
    const double other_best = oit == other.end() ? 0.0 : oit->second;
    if (nr.naive_f > other_best && nr.naive_f > pit->second) ++cmp.switching_is_best;
  }
  return cmp;
}

}  // namespace mlaas
