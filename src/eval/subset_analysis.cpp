#include "eval/subset_analysis.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace mlaas {

double expected_subset_max(std::vector<double> values, int k) {
  const int n = static_cast<int>(values.size());
  if (k < 1 || k > n) throw std::invalid_argument("expected_subset_max: bad k");
  std::sort(values.begin(), values.end(), std::greater<>());
  // P(item at sorted position i is the subset max) = C(n-1-i, k-1) / C(n, k).
  // Computed iteratively to avoid factorial overflow.
  double expectation = 0.0;
  // Start with i = 0: C(n-1, k-1) / C(n, k) = k / n.
  double p = static_cast<double>(k) / static_cast<double>(n);
  for (int i = 0; i < n; ++i) {
    expectation += p * values[static_cast<std::size_t>(i)];
    // Transition: C(n-2-i, k-1)/C(n-1-i, k-1) = (n-k-i)/(n-1-i).
    const double num = static_cast<double>(n - k - i);
    const double den = static_cast<double>(n - 1 - i);
    p = den > 0 ? p * std::max(0.0, num) / den : 0.0;
  }
  return expectation;
}

SubsetCurve classifier_subset_curve(const MeasurementTable& table,
                                    const std::string& platform) {
  // Per dataset, per classifier: best F across its configurations (no FEAT).
  const MeasurementTable rows = table.for_platform(platform).filter(
      [](const Measurement& m) { return m.classifier != "auto" && m.feature_step == "none"; });
  std::map<std::string, std::map<std::string, double>> best;  // dataset -> clf -> f
  for (const auto& m : rows.rows()) {
    auto& slot = best[m.dataset_id];
    auto [it, inserted] = slot.emplace(m.classifier, m.test.f_score);
    if (!inserted) it->second = std::max(it->second, m.test.f_score);
  }

  // Classifier roster: intersection across datasets (all datasets see the
  // same CLF menu, so this is just the distinct set).
  const auto classifiers = rows.classifiers();
  const int n_clf = static_cast<int>(classifiers.size());

  SubsetCurve curve;
  curve.platform = platform;
  for (int k = 1; k <= n_clf; ++k) {
    SubsetCurvePoint point;
    point.k = k;
    std::vector<double> per_dataset;
    for (const auto& [dataset, per_clf] : best) {
      std::vector<double> values;
      values.reserve(per_clf.size());
      for (const auto& [clf, f] : per_clf) values.push_back(f);
      if (static_cast<int>(values.size()) < k) continue;
      per_dataset.push_back(expected_subset_max(values, k));
    }
    if (per_dataset.empty()) continue;
    double sum = 0.0, sum2 = 0.0;
    for (double f : per_dataset) {
      sum += f;
      sum2 += f * f;
    }
    const double n = static_cast<double>(per_dataset.size());
    point.expected_best_f = sum / n;
    point.std_dev = std::sqrt(std::max(0.0, sum2 / n - point.expected_best_f * point.expected_best_f));
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace mlaas
