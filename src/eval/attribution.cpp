#include "eval/attribution.h"

#include <algorithm>
#include <map>

namespace mlaas {

std::string to_string(ControlDimension dim) {
  switch (dim) {
    case ControlDimension::kFeat: return "Feature Selection";
    case ControlDimension::kClf: return "Classifier Selection";
    case ControlDimension::kPara: return "Parameter Tuning";
  }
  return "?";
}

MeasurementTable single_dimension_rows(const MeasurementTable& table,
                                       const std::string& platform, ControlDimension dim) {
  return table.for_platform(platform).filter([dim](const Measurement& m) {
    if (m.classifier == "auto") return false;
    switch (dim) {
      case ControlDimension::kFeat:
        // FEAT varies; CLF at baseline (LR), PARA at defaults.
        return m.classifier == "logistic_regression" && m.default_params;
      case ControlDimension::kClf:
        return m.feature_step == "none" && m.default_params;
      case ControlDimension::kPara:
        return m.feature_step == "none" && m.classifier == "logistic_regression";
    }
    return false;
  });
}

namespace {

/// Average across datasets of the best F-score per dataset.
double avg_best_f(const MeasurementTable& rows) {
  std::map<std::string, double> best;
  for (const auto& m : rows.rows()) {
    auto [it, inserted] = best.emplace(m.dataset_id, m.test.f_score);
    if (!inserted) it->second = std::max(it->second, m.test.f_score);
  }
  if (best.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [d, f] : best) sum += f;
  return sum / static_cast<double>(best.size());
}

}  // namespace

std::vector<ControlImprovement> control_improvements(const MeasurementTable& table,
                                                     const std::vector<std::string>& platforms) {
  std::vector<ControlImprovement> out;
  for (const auto& platform : platforms) {
    const MeasurementTable platform_rows = table.for_platform(platform);
    const double baseline = avg_best_f(platform_rows.baseline());
    for (ControlDimension dim :
         {ControlDimension::kFeat, ControlDimension::kClf, ControlDimension::kPara}) {
      ControlImprovement ci;
      ci.platform = platform;
      ci.dimension = dim;
      ci.baseline_f = baseline;
      const MeasurementTable rows = single_dimension_rows(table, platform, dim);
      // A dimension is "supported" when the platform has rows beyond the
      // baseline along it (e.g. Amazon has no CLF rows, BigML no FEAT rows).
      bool varies = false;
      for (const auto& m : rows.rows()) {
        varies = varies ||
                 (dim == ControlDimension::kFeat && m.feature_step != "none") ||
                 (dim == ControlDimension::kClf && m.classifier != "logistic_regression") ||
                 (dim == ControlDimension::kPara && !m.default_params);
      }
      ci.supported = varies;
      if (varies && baseline > 0.0) {
        ci.tuned_f = avg_best_f(rows);
        ci.relative_improvement = (ci.tuned_f - baseline) / baseline;
      }
      out.push_back(ci);
    }
  }
  return out;
}

}  // namespace mlaas
