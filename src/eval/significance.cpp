#include "eval/significance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/stats.h"

namespace mlaas {

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

WilcoxonResult wilcoxon_signed_rank(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("wilcoxon_signed_rank: size mismatch");
  }
  std::vector<double> abs_diff;
  std::vector<int> sign;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d == 0.0) continue;  // standard practice: drop zero differences
    abs_diff.push_back(std::abs(d));
    sign.push_back(d > 0 ? 1 : -1);
  }
  WilcoxonResult result;
  result.n_effective = abs_diff.size();
  if (result.n_effective == 0) return result;  // identical: p = 1

  const auto ranks = fractional_ranks(abs_diff);
  double w_plus = 0.0, w_minus = 0.0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    (sign[i] > 0 ? w_plus : w_minus) += ranks[i];
  }
  result.w_statistic = std::min(w_plus, w_minus);

  const double n = static_cast<double>(result.n_effective);
  const double mean = n * (n + 1.0) / 4.0;
  const double sd = std::sqrt(n * (n + 1.0) * (2.0 * n + 1.0) / 24.0);
  if (sd == 0.0) return result;
  result.z = (result.w_statistic - mean) / sd;
  result.p_value = std::clamp(2.0 * normal_cdf(result.z), 0.0, 1.0);
  return result;
}

double nemenyi_critical_difference(std::size_t k, std::size_t n) {
  // q_0.05 values (studentized range / sqrt(2)) for k = 2..10 (Demšar 2006).
  static const double q05[] = {1.960, 2.343, 2.569, 2.728, 2.850,
                               2.949, 3.031, 3.102, 3.164};
  if (k < 2 || k > 10) {
    throw std::invalid_argument("nemenyi_critical_difference: k must be in [2,10]");
  }
  if (n == 0) throw std::invalid_argument("nemenyi_critical_difference: n must be > 0");
  const double kk = static_cast<double>(k);
  return q05[k - 2] * std::sqrt(kk * (kk + 1.0) / (6.0 * static_cast<double>(n)));
}

std::vector<PairwiseComparison> pairwise_comparisons(
    const std::vector<std::string>& entities,
    const std::vector<std::vector<double>>& scores) {
  const FriedmanResult friedman = friedman_ranking(entities, scores);
  const double cd = nemenyi_critical_difference(entities.size(), friedman.n_blocks);

  std::vector<PairwiseComparison> out;
  for (std::size_t i = 0; i < entities.size(); ++i) {
    for (std::size_t j = i + 1; j < entities.size(); ++j) {
      PairwiseComparison cmp;
      cmp.a = entities[i];
      cmp.b = entities[j];
      std::vector<double> a, b;
      for (const auto& row : scores) {
        if (row.size() != entities.size()) continue;
        bool finite = true;
        for (double v : row) finite = finite && std::isfinite(v);
        if (!finite) continue;
        a.push_back(row[i]);
        b.push_back(row[j]);
      }
      cmp.wilcoxon = wilcoxon_signed_rank(a, b);
      cmp.rank_difference =
          std::abs(friedman.average_rank[i] - friedman.average_rank[j]);
      cmp.nemenyi_significant = cmp.rank_difference > cd;
      out.push_back(std::move(cmp));
    }
  }
  return out;
}

}  // namespace mlaas
