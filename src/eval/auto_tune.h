// Budget-limited automated configuration search (extension).
//
// §7 of the paper surveys AutoML systems (Auto-WEKA, Auto-sklearn) that
// search the joint classifier/parameter space under a budget instead of
// exhaustive grids.  auto_tune() brings that capability to any simulated
// platform: random candidates from the FEAT x CLF x PARA surface are raced
// with successive halving — all candidates start on a small training
// subsample, the better half advances to more data — so good configurations
// are found with a fraction of the full grid's training cost.
//
// bench_ext_automl compares this against the paper's exhaustive "optimized"
// reference.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "platform/platform.h"

namespace mlaas {

struct AutoTuneOptions {
  /// Total training-call budget across all rounds.
  int budget = 48;
  /// Candidates eliminated per round: keep 1/eta of the field.
  int eta = 2;
  /// Successive-halving rounds (data fraction doubles each round).
  int rounds = 3;
  double validation_fraction = 0.3;
  std::uint64_t seed = 0;
};

struct AutoTuneResult {
  PipelineConfig best_config;
  double best_validation_f = 0.0;
  int evaluations = 0;  // actual training calls spent
};

/// Search the platform's configuration space under a budget.  Throws
/// std::invalid_argument when the platform exposes no controls (black-box
/// platforms have nothing to tune).
AutoTuneResult auto_tune(const Platform& platform, const Dataset& train,
                         const AutoTuneOptions& options);

/// Uniform sample from the platform's FEAT x CLF x PARA space (grid values
/// follow the paper's sweep rule).
std::vector<PipelineConfig> sample_configs(const Platform& platform, std::size_t count,
                                           std::uint64_t seed);

}  // namespace mlaas
