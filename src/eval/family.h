// Linear vs non-linear classifier families (Table 5, Figure 11).
//
// Table 5 assigns the local library's classifiers to the linear family (LR,
// NB, Linear SVM, LDA) or the non-linear family (DT, RF, BST, KNN, BAG,
// MLP); Figure 11 shows that on CIRCLE the non-linear family dominates and
// on LINEAR (noisy) the linear family wins — the divergence the §6.2
// meta-predictor exploits.
#pragma once

#include <string>
#include <vector>

#include "eval/measurement.h"

namespace mlaas {

struct FamilyScores {
  std::vector<double> linear_f;     // F-scores of linear-family experiments
  std::vector<double> nonlinear_f;  // F-scores of non-linear-family experiments
};

/// Partition the table's rows by classifier family (rows with classifier
/// "auto" are skipped).
FamilyScores split_by_family(const MeasurementTable& table);

/// Run the local library's full configuration grid on one probe dataset and
/// return the family-partitioned F-scores (Figure 11's experiment).
FamilyScores family_gap_on_probe(const Dataset& probe, const MeasurementOptions& options);

}  // namespace mlaas
