#include "eval/measurement.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "data/split.h"
#include "eval/journal.h"
#include "ml/tree/trainer.h"
#include "util/clock.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace mlaas {

bool Measurement::deferred() const { return !ok && failure == kDeferredStatus; }

void MeasurementTable::append(const MeasurementTable& other) {
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

MeasurementTable MeasurementTable::filter(
    const std::function<bool(const Measurement&)>& pred) const {
  MeasurementTable out;
  for (const auto& row : rows_) {
    if (pred(row)) out.add(row);
  }
  return out;
}

MeasurementTable MeasurementTable::for_platform(const std::string& platform) const {
  return filter([&](const Measurement& m) { return m.platform == platform; });
}

MeasurementTable MeasurementTable::for_dataset(const std::string& dataset_id) const {
  return filter([&](const Measurement& m) { return m.dataset_id == dataset_id; });
}

MeasurementTable MeasurementTable::succeeded() const {
  return filter([](const Measurement& m) { return m.ok; });
}

MeasurementTable MeasurementTable::failures() const {
  return filter([](const Measurement& m) { return !m.ok; });
}

MeasurementTable MeasurementTable::deferred() const {
  return filter([](const Measurement& m) { return m.deferred(); });
}

MeasurementTable MeasurementTable::baseline() const {
  return filter([](const Measurement& m) {
    const bool default_clf =
        m.classifier == "auto" || m.classifier == "logistic_regression";
    return m.ok && m.feature_step == "none" && default_clf && m.default_params;
  });
}

namespace {
std::vector<std::string> distinct(const std::vector<Measurement>& rows,
                                  const std::function<std::string(const Measurement&)>& get) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const auto& row : rows) {
    if (seen.insert(get(row)).second) out.push_back(get(row));
  }
  return out;
}
}  // namespace

std::vector<std::string> MeasurementTable::platforms() const {
  return distinct(rows_, [](const Measurement& m) { return m.platform; });
}

std::vector<std::string> MeasurementTable::dataset_ids() const {
  return distinct(rows_, [](const Measurement& m) { return m.dataset_id; });
}

std::vector<std::string> MeasurementTable::classifiers() const {
  return distinct(rows_, [](const Measurement& m) { return m.classifier; });
}

std::vector<const Measurement*> MeasurementTable::best_per_dataset() const {
  std::map<std::string, const Measurement*> best;
  for (const auto& row : rows_) {
    if (!row.ok) continue;  // failed cells carry no metrics
    auto [it, inserted] = best.emplace(row.dataset_id, &row);
    if (!inserted && row.test.f_score > it->second->test.f_score) it->second = &row;
  }
  std::vector<const Measurement*> out;
  out.reserve(best.size());
  for (const auto& [id, row] : best) out.push_back(row);
  return out;
}

namespace {

constexpr const char* kCsvHeader =
    "dataset\tplatform\tfeat\tclf\tparams\tdefault\tf\tacc\tprec\trec\tsec\tpsec\tsig\t"
    "status";

/// Split on tabs, keeping empty fields (istringstream-based getline drops a
/// trailing empty field, which would mis-count columns on failed rows).
std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

double parse_double_field(const std::string& context, const std::string& column,
                          const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("MeasurementTable: " + context + ": bad numeric field '" +
                             column + "' = '" + value + "'");
  }
}

}  // namespace

std::string measurement_row_to_tsv(const Measurement& m) {
  std::ostringstream out;
  // max_digits10: rows restored from a journal must reproduce the in-memory
  // doubles bit for bit, or a resumed campaign would differ from an
  // uninterrupted one.
  out.precision(17);
  out << m.dataset_id << '\t' << m.platform << '\t' << m.feature_step << '\t'
      << m.classifier << '\t' << m.params << '\t' << (m.default_params ? 1 : 0) << '\t'
      << m.test.f_score << '\t' << m.test.accuracy << '\t' << m.test.precision << '\t'
      << m.test.recall << '\t' << m.train_seconds << '\t' << m.predict_seconds << '\t'
      << m.label_signature << '\t' << (m.ok ? "ok" : m.failure);
  return out.str();
}

Measurement measurement_row_from_tsv(const std::string& line, const std::string& context) {
  const auto fields = split_tabs(line);
  // v1 caches have 12 columns (no status); v2 append a status column; v3
  // insert a psec (predict CPU seconds) column between sec and sig.
  if (fields.size() != 12 && fields.size() != 13 && fields.size() != 14) {
    throw std::runtime_error("MeasurementTable: " + context +
                             ": expected 12, 13 or 14 columns, got " +
                             std::to_string(fields.size()));
  }
  Measurement m;
  m.dataset_id = fields[0];
  m.platform = fields[1];
  m.feature_step = fields[2];
  m.classifier = fields[3];
  m.params = fields[4];
  m.default_params = fields[5] == "1";
  m.test.f_score = parse_double_field(context, "f", fields[6]);
  m.test.accuracy = parse_double_field(context, "acc", fields[7]);
  m.test.precision = parse_double_field(context, "prec", fields[8]);
  m.test.recall = parse_double_field(context, "rec", fields[9]);
  m.train_seconds =
      fields[10].empty() ? 0.0 : parse_double_field(context, "sec", fields[10]);
  std::size_t next = 11;
  if (fields.size() == 14) {
    m.predict_seconds =
        fields[11].empty() ? 0.0 : parse_double_field(context, "psec", fields[11]);
    next = 12;
  }
  m.label_signature = fields[next];
  if (fields.size() >= 13) {
    const std::string& status = fields[next + 1];
    if (status != "ok" && !status.empty()) {
      m.ok = false;
      m.failure = status;
    }
  }
  return m;
}

void MeasurementTable::save_csv(const std::string& path,
                                const std::string& fingerprint) const {
  std::ofstream out = open_sidecar(path, "MeasurementTable");
  if (!fingerprint.empty()) out << "# " << fingerprint << '\n';
  out << kCsvHeader << '\n';
  for (const auto& m : rows_) out << measurement_row_to_tsv(m) << '\n';
  finish_sidecar(out, path, "MeasurementTable");
}

MeasurementTable MeasurementTable::load_csv(const std::string& path,
                                            std::string* fingerprint) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("MeasurementTable: cannot read " + path);
  if (fingerprint != nullptr) fingerprint->clear();
  MeasurementTable table;
  std::string line;
  std::size_t line_no = 0;
  // Optional '# fingerprint' line, then the column header.
  if (!std::getline(in, line)) {
    throw std::runtime_error("MeasurementTable: " + path + ": empty file");
  }
  ++line_no;
  if (!line.empty() && line[0] == '#') {
    std::string fp = line.substr(1);
    const std::size_t first = fp.find_first_not_of(' ');
    if (fingerprint != nullptr && first != std::string::npos) {
      *fingerprint = fp.substr(first);
    }
    std::getline(in, line);  // consume the column header
    ++line_no;
  }
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    table.add(measurement_row_from_tsv(line, path + ":" + std::to_string(line_no)));
  }
  return table;
}

Schedule parse_schedule(const std::string& name) {
  if (name == "static") return Schedule::kStatic;
  if (name == "dynamic") return Schedule::kDynamic;
  throw std::invalid_argument("unknown schedule '" + name +
                              "' (expected 'static' or 'dynamic')");
}

const char* to_string(Schedule schedule) {
  return schedule == Schedule::kStatic ? "static" : "dynamic";
}

double SchedulerStats::busy_seconds() const {
  return std::accumulate(worker_busy_seconds.begin(), worker_busy_seconds.end(), 0.0);
}

double SchedulerStats::imbalance() const {
  if (worker_busy_seconds.empty()) return 1.0;
  double max_busy = 0.0;
  for (double b : worker_busy_seconds) max_busy = std::max(max_busy, b);
  const double mean =
      busy_seconds() / static_cast<double>(worker_busy_seconds.size());
  return mean > 0.0 ? max_busy / mean : 1.0;
}

ServiceQuota CampaignOptions::quota_for(const std::string& platform,
                                        std::uint64_t seed) const {
  ServiceQuota q = ::mlaas::quota_profile(quota_profile, platform);
  q.fault_rate = fault_rate;
  q.fault_plan = make_fault_plan(chaos_profile, platform, seed);
  return q;
}

RetryPolicy CampaignOptions::retry_policy(std::uint64_t session_seed) const {
  RetryPolicy policy;
  policy.max_attempts = retry_budget;
  policy.initial_backoff_seconds = initial_backoff_seconds;
  policy.max_backoff_seconds = max_backoff_seconds;
  policy.jitter = jitter;
  policy.jitter_seed = session_seed;
  return policy;
}

void PlatformCampaignStats::merge(const PlatformCampaignStats& other) {
  service.merge(other.service);
  merge_stats(*this, other);
  for (const auto& [status, count] : other.failures_by_status) {
    failures_by_status[status] += count;
  }
}

double PlatformCampaignStats::coverage() const {
  // Deferred cells count against coverage: an excluded platform's cells were
  // offered but never measured, exactly like permanent failures.
  const std::size_t attempted = cells_ok + cells_failed + cells_deferred;
  return attempted == 0 ? 1.0
                        : static_cast<double>(cells_ok) / static_cast<double>(attempted);
}

PlatformCampaignStats CampaignReport::totals() const {
  PlatformCampaignStats total;
  total.platform = "TOTAL";
  for (const auto& p : platforms) total.merge(p);
  return total;
}

MetricsRegistry CampaignReport::metrics() const {
  MetricsRegistry registry;
  for (const auto& p : platforms) {
    const std::string prefix = "campaign." + p.platform + ".";
    register_stats(registry, prefix, p);
    register_stats(registry, prefix + "service.", p.service);
    for (const auto& [status, count] : p.failures_by_status) {
      registry.counter(prefix + "failure." + status) += static_cast<double>(count);
    }
  }
  register_stats(registry, "scheduler.", scheduler);
  return registry;
}

namespace {

constexpr const char* kReportHeader =
    "platform\tcells_total\tcells_ok\tcells_failed\tcells_rejected\tcells_deferred\t"
    "cells_restored\trequests\tuploads\ttrainings\tpredictions\trate_limited\t"
    "transient_errors\tserver_errors\tunavailable\tretries\tbreaker_trips\tbackoff_sec\t"
    "outage_sec\tsimulated_sec\ttrain_cpu_sec\tpredict_cpu_sec\tfailures";

// Pre-predict_cpu_sec header (22 columns); still loadable so existing report
// sidecars survive the format bump.
constexpr const char* kReportHeaderV1 =
    "platform\tcells_total\tcells_ok\tcells_failed\tcells_rejected\tcells_deferred\t"
    "cells_restored\trequests\tuploads\ttrainings\tpredictions\trate_limited\t"
    "transient_errors\tserver_errors\tunavailable\tretries\tbreaker_trips\tbackoff_sec\t"
    "outage_sec\tsimulated_sec\ttrain_cpu_sec\tfailures";

// Scheduler telemetry rides along as a marked trailer line so the platform
// table keeps its fixed 22-column shape (older sidecars without the trailer
// still load).
constexpr const char* kSchedulerPrefix = "# scheduler\t";

// Trace summary trailer of a traced campaign; absent entirely when tracing
// was off, so untraced sidecar bytes are unchanged from pre-trace builds.
constexpr const char* kTracePrefix = "# trace\t";

std::string encode_failures(const std::map<std::string, std::size_t>& failures) {
  if (failures.empty()) return "-";
  std::string out;
  for (const auto& [status, count] : failures) {
    if (!out.empty()) out += ';';
    out += status + "=" + std::to_string(count);
  }
  return out;
}

void write_report_row(std::ostream& out, const PlatformCampaignStats& p) {
  out << p.platform << '\t' << p.cells_total << '\t' << p.cells_ok << '\t'
      << p.cells_failed << '\t' << p.cells_rejected << '\t' << p.cells_deferred << '\t'
      << p.cells_restored << '\t' << p.service.requests << '\t' << p.service.uploads
      << '\t' << p.service.trainings << '\t' << p.service.predictions << '\t'
      << p.service.rate_limited << '\t' << p.service.transient_errors << '\t'
      << p.service.server_errors << '\t' << p.service.unavailable << '\t' << p.retries
      << '\t' << p.breaker_trips << '\t' << p.backoff_seconds << '\t' << p.outage_seconds
      << '\t' << p.simulated_seconds << '\t' << p.service.train_cpu_seconds << '\t'
      << p.service.predict_cpu_seconds << '\t' << encode_failures(p.failures_by_status)
      << '\n';
}

std::string encode_worker_busy(const std::vector<double>& busy) {
  if (busy.empty()) return "-";
  std::ostringstream out;
  out.precision(6);
  for (std::size_t i = 0; i < busy.size(); ++i) {
    if (i > 0) out << ';';
    out << busy[i];
  }
  return out.str();
}

void write_scheduler_row(std::ostream& out, const SchedulerStats& s) {
  out << kSchedulerPrefix << "schedule=" << s.schedule << "\tworkers=" << s.workers
      << "\tsessions=" << s.sessions << "\tstolen=" << s.sessions_stolen
      << "\tmakespan_sec=" << s.makespan_seconds << "\tbusy_sec=" << s.busy_seconds()
      << "\timbalance=" << s.imbalance()
      << "\tworker_busy_sec=" << encode_worker_busy(s.worker_busy_seconds) << '\n';
}

bool parse_scheduler_row(const std::string& line, SchedulerStats* s) {
  std::istringstream fields(line.substr(std::string(kSchedulerPrefix).size()));
  std::string field;
  try {
    while (std::getline(fields, field, '\t')) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) return false;
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "schedule") {
        s->schedule = value;
      } else if (key == "workers") {
        s->workers = std::stoull(value);
      } else if (key == "sessions") {
        s->sessions = std::stoull(value);
      } else if (key == "stolen") {
        s->sessions_stolen = std::stoull(value);
      } else if (key == "makespan_sec") {
        s->makespan_seconds = std::stod(value);
      } else if (key == "worker_busy_sec" && value != "-") {
        std::istringstream parts(value);
        std::string part;
        while (std::getline(parts, part, ';')) {
          s->worker_busy_seconds.push_back(std::stod(part));
        }
      }
      // busy_sec / imbalance are derived on write; ignored on read.
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void CampaignReport::save_tsv(const std::string& path) const {
  std::ofstream out = open_sidecar(path, "CampaignReport");
  out.precision(10);
  out << kReportHeader << '\n';
  for (const auto& p : platforms) write_report_row(out, p);
  if (scheduler.workers > 0) write_scheduler_row(out, scheduler);
  if (!trace_summary.empty()) out << kTracePrefix << trace_summary << '\n';
  finish_sidecar(out, path, "CampaignReport");
}

void CampaignReport::save_json(const std::string& path) const {
  std::ofstream out = open_sidecar(path, "CampaignReport");
  out.precision(10);
  out << "{\n  \"platforms\": [\n";
  for (std::size_t i = 0; i < platforms.size(); ++i) {
    const auto& p = platforms[i];
    out << "    {\n"
        << "      \"platform\": \"" << json_escape(p.platform) << "\",\n"
        << "      \"cells\": {\"total\": " << p.cells_total << ", \"ok\": " << p.cells_ok
        << ", \"failed\": " << p.cells_failed << ", \"rejected\": " << p.cells_rejected
        << ", \"deferred\": " << p.cells_deferred
        << ", \"restored\": " << p.cells_restored << "},\n"
        << "      \"coverage\": " << p.coverage() << ",\n"
        << "      \"requests\": " << p.service.requests
        << ", \"uploads\": " << p.service.uploads
        << ", \"trainings\": " << p.service.trainings
        << ", \"predictions\": " << p.service.predictions << ",\n"
        << "      \"rate_limited\": " << p.service.rate_limited
        << ", \"transient_errors\": " << p.service.transient_errors
        << ", \"server_errors\": " << p.service.server_errors
        << ", \"unavailable\": " << p.service.unavailable
        << ", \"retries\": " << p.retries
        << ", \"breaker_trips\": " << p.breaker_trips << ",\n"
        << "      \"backoff_seconds\": " << p.backoff_seconds
        << ", \"outage_seconds\": " << p.outage_seconds
        << ", \"simulated_seconds\": " << p.simulated_seconds
        << ", \"train_cpu_seconds\": " << p.service.train_cpu_seconds
        << ", \"predict_cpu_seconds\": " << p.service.predict_cpu_seconds << ",\n"
        << "      \"failures_by_status\": {";
    bool first = true;
    for (const auto& [status, count] : p.failures_by_status) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << json_escape(status) << "\": " << count;
    }
    out << "}\n    }" << (i + 1 < platforms.size() ? "," : "") << "\n";
  }
  const PlatformCampaignStats total = totals();
  out << "  ],\n  \"scheduler\": {\"schedule\": \"" << json_escape(scheduler.schedule)
      << "\", \"workers\": " << scheduler.workers
      << ", \"sessions\": " << scheduler.sessions
      << ", \"sessions_stolen\": " << scheduler.sessions_stolen
      << ", \"makespan_seconds\": " << scheduler.makespan_seconds
      << ", \"busy_seconds\": " << scheduler.busy_seconds()
      << ", \"imbalance\": " << scheduler.imbalance() << ", \"worker_busy_seconds\": [";
  for (std::size_t i = 0; i < scheduler.worker_busy_seconds.size(); ++i) {
    if (i > 0) out << ", ";
    out << scheduler.worker_busy_seconds[i];
  }
  out << "]},\n";
  if (!trace_summary.empty()) {
    out << "  \"trace\": \"" << json_escape(trace_summary) << "\",\n";
  }
  out << "  \"total\": {\"cells_ok\": " << total.cells_ok
      << ", \"cells_failed\": " << total.cells_failed
      << ", \"coverage\": " << total.coverage()
      << ", \"simulated_seconds\": " << total.simulated_seconds << "}\n}\n";
  finish_sidecar(out, path, "CampaignReport");
}

std::optional<CampaignReport> CampaignReport::load_tsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  if (line != kReportHeader && line != kReportHeaderV1) return std::nullopt;
  CampaignReport report;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind(kSchedulerPrefix, 0) == 0) {
      if (!parse_scheduler_row(line, &report.scheduler)) return std::nullopt;
      continue;
    }
    if (line.rfind(kTracePrefix, 0) == 0) {
      report.trace_summary = line.substr(std::string(kTracePrefix).size());
      continue;
    }
    const auto fields = split_tabs(line);
    if (fields.size() != 22 && fields.size() != 23) return std::nullopt;
    try {
      PlatformCampaignStats p;
      p.platform = fields[0];
      p.cells_total = std::stoull(fields[1]);
      p.cells_ok = std::stoull(fields[2]);
      p.cells_failed = std::stoull(fields[3]);
      p.cells_rejected = std::stoull(fields[4]);
      p.cells_deferred = std::stoull(fields[5]);
      p.cells_restored = std::stoull(fields[6]);
      p.service.requests = std::stoull(fields[7]);
      p.service.uploads = std::stoull(fields[8]);
      p.service.trainings = std::stoull(fields[9]);
      p.service.predictions = std::stoull(fields[10]);
      p.service.rate_limited = std::stoull(fields[11]);
      p.service.transient_errors = std::stoull(fields[12]);
      p.service.server_errors = std::stoull(fields[13]);
      p.service.unavailable = std::stoull(fields[14]);
      p.retries = std::stoull(fields[15]);
      p.breaker_trips = std::stoull(fields[16]);
      p.backoff_seconds = std::stod(fields[17]);
      p.outage_seconds = std::stod(fields[18]);
      p.simulated_seconds = std::stod(fields[19]);
      p.service.train_cpu_seconds = std::stod(fields[20]);
      std::size_t next = 21;
      if (fields.size() == 23) {
        p.service.predict_cpu_seconds = std::stod(fields[21]);
        next = 22;
      }
      if (fields[next] != "-") {
        std::istringstream fs(fields[next]);
        std::string item;
        while (std::getline(fs, item, ';')) {
          const std::size_t eq = item.find('=');
          if (eq == std::string::npos) return std::nullopt;
          p.failures_by_status[item.substr(0, eq)] = std::stoull(item.substr(eq + 1));
        }
      }
      report.platforms.push_back(std::move(p));
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return report;
}

std::vector<PipelineConfig> enumerate_configs(const Platform& platform,
                                              const MeasurementOptions& options) {
  const ControlSurface surface = platform.controls();
  const std::size_t para_cap = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             options.scale * static_cast<double>(options.max_para_configs))));

  std::vector<PipelineConfig> configs;
  std::set<std::string> seen;
  auto push = [&](PipelineConfig config) {
    if (seen.insert(config.key()).second) configs.push_back(std::move(config));
  };

  // Baseline first (black-box platforms only ever have this row).
  push(platform.baseline_config());
  if (!surface.classifier_choice && !surface.parameter_tuning &&
      !surface.feature_selection) {
    return configs;
  }

  // CLF dimension: every classifier at its platform defaults.
  for (const auto& spec : surface.classifiers) {
    PipelineConfig config;
    config.classifier = spec.classifier;
    config.params = spec.default_config();
    push(config);
  }

  // Per-classifier PARA grids, expanded once and shared by the PARA
  // dimension and the joint sample below (the joint loop used to re-expand
  // the grid for every draw).
  std::vector<std::vector<ParamMap>> grids;
  if (surface.parameter_tuning) {
    grids.reserve(surface.classifiers.size());
    for (const auto& spec : surface.classifiers) {
      grids.push_back(expand_grid(spec, para_cap, options.seed));
    }
  }

  // PARA dimension: each classifier's grid (capped), no FEAT.
  if (surface.parameter_tuning) {
    for (std::size_t c = 0; c < surface.classifiers.size(); ++c) {
      for (const auto& params : grids[c]) {
        PipelineConfig config;
        config.classifier = surface.classifiers[c].classifier;
        config.params = params;
        push(std::move(config));
      }
    }
  }

  // FEAT dimension: every feature step with every classifier at defaults.
  if (surface.feature_selection) {
    for (const auto& feat : surface.feature_steps) {
      for (const auto& spec : surface.classifiers) {
        PipelineConfig config;
        config.feature_step = feat;
        config.classifier = spec.classifier;
        config.params = spec.default_config();
        push(std::move(config));
      }
    }
  }

  // Joint FEAT x CLF x PARA sample (the paper's full cross product, scaled).
  if (surface.feature_selection && surface.parameter_tuning &&
      !surface.feature_steps.empty() && !surface.classifiers.empty()) {
    const std::size_t joint = static_cast<std::size_t>(
        std::llround(options.scale * static_cast<double>(options.joint_sample)));
    Rng rng(derive_seed(options.seed, "joint-" + platform.name()));
    for (std::size_t k = 0; k < joint; ++k) {
      const auto& feat = surface.feature_steps[rng.index(surface.feature_steps.size())];
      const std::size_t c = rng.index(surface.classifiers.size());
      const auto& grid = grids[c];
      if (grid.empty()) continue;  // classifier with no expandable grid
      PipelineConfig config;
      config.feature_step = feat;
      config.classifier = surface.classifiers[c].classifier;
      config.params = grid[rng.index(grid.size())];
      push(std::move(config));
    }
  }
  return configs;
}

namespace {

/// Sanitize free-form error text for the tab-separated cache format.
std::string sanitize_failure(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

/// Pre-resolved metadata for one configuration of one platform, computed
/// once per campaign instead of once per (dataset, config) cell.
struct CellSpec {
  PipelineConfig config;
  std::string feature_step;  // "none" normalised
  std::string classifier;    // "auto" normalised
  std::string params;
  bool default_params = false;
  std::string train_salt;    // "train-<config key>" suffix template
};

std::vector<CellSpec> build_cell_specs(const Platform& platform,
                                       const MeasurementOptions& options) {
  const ControlSurface surface = platform.controls();
  std::vector<CellSpec> cells;
  for (auto& config : enumerate_configs(platform, options)) {
    CellSpec cell;
    cell.feature_step = config.feature_step.empty() ? "none" : config.feature_step;
    cell.classifier = config.classifier.empty() ? "auto" : config.classifier;
    cell.params = config.params.to_string();
    if (const ClassifierGridSpec* spec = surface.find(config.classifier)) {
      cell.default_params = config.params == spec->default_config();
    } else {
      cell.default_params = config.params.empty();
    }
    cell.train_salt = config.key();
    cell.config = std::move(config);
    cells.push_back(std::move(cell));
  }
  return cells;
}

Measurement base_row(const CellSpec& cell, const std::string& dataset_id,
                     const std::string& platform_name) {
  Measurement m;
  m.dataset_id = dataset_id;
  m.platform = platform_name;
  m.feature_step = cell.feature_step;
  m.classifier = cell.classifier;
  m.params = cell.params;
  m.default_params = cell.default_params;
  return m;
}

/// One (dataset, platform) service session: upload once, then train/predict
/// every configuration with retries, guarded by the session's circuit
/// breaker.  Fills `out` with ok/failure/deferred rows and `stats` with the
/// session's telemetry.  The session's rows are journaled as one block by
/// the scheduler after the session completes (the session is the resume
/// unit, so per-cell appends bought no extra crash safety); `journal` is
/// only consulted for the durable cell count passed to the test hook.
void run_session(const Dataset& dataset, const TrainTestSplit& split,
                 const Platform& platform, const std::vector<CellSpec>& cells,
                 const ServiceQuota& quota, const MeasurementOptions& options,
                 MeasurementTable* out, PlatformCampaignStats* stats,
                 const CellJournal* journal, TraceTrack* trace) {
  const CampaignOptions& campaign = options.campaign;
  const std::uint64_t session_seed =
      derive_seed(options.seed, "campaign-" + platform.name() + "-" + dataset.meta().id);
  MlaasService service(platform, quota, session_seed);
  RetryingClient client(service, campaign.retry_policy(session_seed));
  CircuitBreaker breaker(campaign.breaker);
  if (trace != nullptr) {
    // Every event in this session lands on the session's own single-owner
    // track, timestamped off the session's simulated clock (which starts at
    // zero), so the track's bytes depend only on (options, dataset,
    // platform) — never on which worker ran it.
    service.set_trace(trace);
    client.set_trace(trace);
    breaker.set_listener([trace, name = platform.name()](const char* transition,
                                                         double at) {
      trace->instant("breaker", transition, at, {{"platform", name}});
    });
  }

  const auto finish_cell = [&](Measurement m) {
    if (m.ok) {
      ++stats->cells_ok;
    } else if (m.deferred()) {
      ++stats->cells_deferred;
    } else {
      ++stats->cells_failed;
      ++stats->failures_by_status[m.failure];
    }
    out->add(m);
    // The hook reports the durable cell count (cells whose session block has
    // reached disk): a hook that aborts the campaign (crash-injection tests)
    // can rely on exactly that many cells surviving.
    if (campaign.after_cell_hook) {
      campaign.after_cell_hook(journal != nullptr ? journal->cells_journaled() : 0);
    }
  };

  stats->cells_total += cells.size();
  std::string dataset_handle;
  const ServiceStatus uploaded = client.upload(split.train, &dataset_handle);

  // Every cell trains on the session's one uploaded split (the service's
  // stored Dataset copy, address-stable until delete_dataset), so a
  // session-scoped TrainContext lets the whole cell loop share one presort /
  // norms build per distinct training matrix.  Feature-step cells transform
  // into temporaries; the context's content-hash guard keeps a reused
  // allocation from ever serving stale state.  Data-only reuse: no
  // admission, clock or fault-RNG effect, so every measured byte is
  // identical with the context on or off.
  TrainContext train_context;
  std::optional<ScopedTrainContext> train_scope;
  if (options.reuse_train_state) train_scope.emplace(&train_context);

  for (const CellSpec& cell : cells) {
    Measurement m = base_row(cell, dataset.meta().id, platform.name());
    switch (breaker.admit(service.now())) {
      case CircuitBreaker::Decision::kDefer:
        m.ok = false;
        m.failure = kDeferredStatus;
        finish_cell(std::move(m));
        continue;
      case CircuitBreaker::Decision::kWait:
      case CircuitBreaker::Decision::kProbe:
        // Half-open: sleep out whatever is left of the cooldown (zero when
        // it already expired), then send this cell as the probe that decides
        // whether the platform has recovered.
        service.advance_clock(breaker.probe_wait_seconds(service.now()));
        break;
      case CircuitBreaker::Decision::kProceed:
        break;
    }
    if (uploaded != ServiceStatus::kOk) {
      m.ok = false;
      m.failure = "upload:" + to_string(uploaded);
    } else {
      std::string model_handle;
      double train_cpu = 0.0;
      const std::uint64_t train_seed = derive_seed(
          options.seed, "train-" + dataset.meta().id + "-" + cell.train_salt);
      const ServiceStatus trained = client.train(dataset_handle, cell.config,
                                                 &model_handle, train_seed, &train_cpu);
      if (trained == ServiceStatus::kBadRequest) {
        // Config outside this platform's surface: skipped, exactly as the
        // direct runner drops std::invalid_argument configs.
        ++stats->cells_rejected;
        continue;
      }
      m.train_seconds = train_cpu;
      if (trained != ServiceStatus::kOk) {
        m.ok = false;
        m.failure = "train:" + to_string(trained);
        if (trained == ServiceStatus::kServerError) {
          m.failure += sanitize_failure(" (" + service.last_error() + ")");
        }
      } else {
        std::vector<int> labels;
        double predict_cpu = 0.0;
        const ServiceStatus predicted =
            client.predict(model_handle, split.test.x(), &labels, &predict_cpu);
        m.predict_seconds = predict_cpu;
        // The model is single-use: release its handle whether or not the
        // predict succeeded, so a campaign session holds at most one live
        // model instead of growing `models_` by one per cell.
        service.delete_model(model_handle);
        if (predicted != ServiceStatus::kOk) {
          m.ok = false;
          m.failure = "predict:" + to_string(predicted);
        } else {
          m.test = compute_metrics(split.test.y(), labels);
          const std::size_t sig = std::min(kLabelSignatureSize, labels.size());
          m.label_signature.reserve(sig);
          for (std::size_t i = 0; i < sig; ++i) {
            m.label_signature += labels[i] == 1 ? '1' : '0';
          }
        }
      }
    }
    if (m.ok) {
      breaker.record_success(service.now());
    } else {
      breaker.record_failure(service.now());
    }
    finish_cell(std::move(m));
  }

  // Session teardown: the uploaded training set is dead once the last cell
  // has trained.  Without this, `datasets_` grows by one dataset copy per
  // (dataset, platform) session for the life of the campaign.
  if (uploaded == ServiceStatus::kOk) service.delete_dataset(dataset_handle);

  stats->service.merge(service.stats());
  stats->retries += client.total_retries();
  stats->backoff_seconds += client.total_backoff_seconds();
  stats->simulated_seconds += service.now();
  stats->breaker_trips += breaker.trips();
  stats->outage_seconds += quota.fault_plan.outage_seconds(0.0, service.now());

  if (trace != nullptr) {
    // Session-level span last: it covers the whole simulated timeline of the
    // session, [0, service.now()).  train_seconds (wall CPU time) stays out
    // of the trace — it is the one per-cell number that differs between
    // reruns.
    trace->span("campaign", "session", 0.0, service.now(),
                {{"dataset", dataset.meta().id},
                 {"platform", platform.name()},
                 {"cells", std::to_string(cells.size())}});
  }
}

/// Serializes completed session blocks into the journal in canonical session
/// order (dataset-major, platform-minor) no matter which worker finishes
/// first, so the journal bytes are identical for every thread count,
/// schedule and steal order.  A session completed out of order is buffered
/// until its predecessors flush; on a crash such buffered sessions simply
/// re-run — the resume unit is unchanged.
class OrderedJournalWriter {
 public:
  OrderedJournalWriter(CellJournal* journal, std::size_t n_sessions,
                       std::function<void(std::size_t)> flush_session)
      : journal_(journal),
        state_(n_sessions, State::kRunning),
        flush_session_(std::move(flush_session)) {}

  /// Mark session `s` finished.  `write` is false for sessions restored from
  /// a previous journal (their bytes are already on disk).
  void complete(std::size_t s, bool write) {
    std::lock_guard lock(mu_);
    state_[s] = write ? State::kFlushable : State::kSkip;
    while (next_ < state_.size() && state_[next_] != State::kRunning) {
      if (state_[next_] == State::kFlushable && journal_ != nullptr) {
        flush_session_(next_);
      }
      ++next_;
    }
  }

 private:
  enum class State { kRunning, kFlushable, kSkip };

  CellJournal* journal_;
  std::vector<State> state_;
  std::function<void(std::size_t)> flush_session_;
  std::mutex mu_;
  std::size_t next_ = 0;
};

}  // namespace

std::optional<Measurement> measure_one(const Dataset& dataset, const Platform& platform,
                                       const PipelineConfig& config,
                                       const MeasurementOptions& options) {
  // The split depends only on (study seed, dataset), so every platform and
  // configuration sees the same train/test partition (§3.1).
  const auto split = train_test_split(
      dataset, options.test_fraction,
      derive_seed(options.seed, "split-" + dataset.meta().id), /*stratified=*/true);
  Measurement m;
  m.dataset_id = dataset.meta().id;
  m.platform = platform.name();
  m.feature_step = config.feature_step.empty() ? "none" : config.feature_step;
  m.classifier = config.classifier.empty() ? "auto" : config.classifier;
  m.params = config.params.to_string();
  const ControlSurface surface = platform.controls();
  if (const ClassifierGridSpec* spec = surface.find(config.classifier)) {
    m.default_params = config.params == spec->default_config();
  } else {
    m.default_params = config.params.empty();
  }
  try {
    // Per-thread CPU time, not wall time: the measured training cost must
    // not depend on how oversubscribed the pool is (§8 dimension).
    const double t0 = thread_cpu_seconds();
    const auto model = platform.train(
        split.train, config,
        derive_seed(options.seed, "train-" + dataset.meta().id + "-" + config.key()));
    m.train_seconds = thread_cpu_seconds() - t0;
    const double p0 = thread_cpu_seconds();
    const auto predictions = model->predict(split.test.x());
    m.predict_seconds = thread_cpu_seconds() - p0;
    m.test = compute_metrics(split.test.y(), predictions);
    const std::size_t sig = std::min(kLabelSignatureSize, predictions.size());
    m.label_signature.reserve(sig);
    for (std::size_t i = 0; i < sig; ++i) {
      m.label_signature += predictions[i] == 1 ? '1' : '0';
    }
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // config outside this platform's surface
  } catch (const std::exception& e) {
    // Any other platform error becomes a failure row instead of unwinding
    // through ThreadPool::parallel_for and killing the whole campaign.
    m.ok = false;
    m.failure = sanitize_failure(std::string("exception:") + e.what());
    m.test = {};
    m.label_signature.clear();
  }
  return m;
}

CampaignResult run_campaign(const std::vector<Dataset>& corpus,
                            const std::vector<PlatformPtr>& platforms,
                            const MeasurementOptions& options) {
  if (options.threads < 0) {
    throw std::invalid_argument("run_campaign: threads must be >= 0 (0 = hardware "
                                "concurrency), got " + std::to_string(options.threads));
  }
  // Pre-enumerate configs and their row metadata once per platform, and
  // resolve quota profiles eagerly: an unknown profile or chaos profile must
  // throw here, in the caller's thread, not inside a pool worker.
  std::vector<std::vector<CellSpec>> cells;
  std::vector<ServiceQuota> quotas;
  cells.reserve(platforms.size());
  quotas.reserve(platforms.size());
  for (const auto& p : platforms) {
    cells.push_back(build_cell_specs(*p, options));
    quotas.push_back(options.campaign.quota_for(p->name(), options.seed));
  }

  // Write-ahead journal: restore completed sessions from a previous crashed
  // run (fingerprint must match), then append every session finished here.
  std::unique_ptr<CellJournal> journal;
  CellJournal::Restored restored;
  if (!options.campaign.journal_path.empty()) {
    const std::string fingerprint = measurement_fingerprint(corpus, platforms, options);
    bool fresh = true;
    if (options.campaign.resume) {
      if (auto loaded = CellJournal::load(options.campaign.journal_path, fingerprint)) {
        restored = std::move(*loaded);
        fresh = false;
      }
    }
    journal = std::make_unique<CellJournal>(options.campaign.journal_path, fingerprint,
                                            fresh);
    if (options.verbose && restored.cells > 0) {
      std::cerr << "[measure] journal: restoring " << restored.cells << " cells from "
                << restored.sessions.size() << " completed sessions ("
                << restored.discarded << " partial-session cells re-run)\n";
    }
  }

  // The campaign is flattened into one work item per (dataset, platform)
  // session — the finest grain that stays deterministic, since every session
  // owns an independently seeded service stream.  Results land in
  // preallocated per-session slots and are assembled in canonical order
  // below, so the table is byte-identical for every thread count, schedule
  // and steal order.
  const std::size_t n_platforms = platforms.size();
  const std::size_t n_sessions = corpus.size() * n_platforms;
  std::vector<MeasurementTable> slots(n_sessions);
  std::vector<PlatformCampaignStats> slot_stats(n_sessions);
  // Traced campaigns get one standalone single-owner track per session slot,
  // filled by whichever worker runs the session and adopted into the Trace
  // in canonical session order after the pool joins — the same assembly
  // discipline as the measurement slots and the ordered journal.
  std::vector<std::optional<TraceTrack>> session_tracks(
      options.trace ? n_sessions : 0);

  // The per-dataset split depends only on (study seed, dataset) — §3.1.
  // Sessions of the same dataset on different workers share one memoized
  // split behind a call_once; the last session of a dataset releases it so
  // peak memory stays at O(threads) splits, not O(corpus).
  std::vector<std::once_flag> split_once(corpus.size());
  std::vector<std::optional<TrainTestSplit>> splits(corpus.size());
  std::vector<std::atomic<std::size_t>> dataset_sessions_left(corpus.size());
  for (auto& left : dataset_sessions_left) left.store(n_platforms);
  auto split_for = [&](std::size_t d) -> const TrainTestSplit& {
    std::call_once(split_once[d], [&] {
      splits[d].emplace(train_test_split(
          corpus[d], options.test_fraction,
          derive_seed(options.seed, "split-" + corpus[d].meta().id),
          /*stratified=*/true));
    });
    return *splits[d];
  };

  OrderedJournalWriter writer(journal.get(), n_sessions, [&](std::size_t s) {
    journal->append_session_block(corpus[s / n_platforms].meta().id,
                                  platforms[s % n_platforms]->name(),
                                  slots[s].rows());
  });

  std::atomic<std::size_t> datasets_done{0};
  auto run_session_slot = [&](std::size_t s) {
    const std::size_t d = s / n_platforms;
    const std::size_t p = s % n_platforms;
    const Dataset& dataset = corpus[d];
    PlatformCampaignStats& pstats = slot_stats[s];
    const std::string key =
        CellJournal::session_key(dataset.meta().id, platforms[p]->name());
    TraceTrack* track = nullptr;
    if (options.trace) {
      session_tracks[s].emplace("session:" + dataset.meta().id + "|" +
                                platforms[p]->name());
      track = &*session_tracks[s];
    }
    if (auto it = restored.sessions.find(key); it != restored.sessions.end()) {
      // Session completed before the crash: restore its rows verbatim.
      // Service/request telemetry for restored sessions was lost with the
      // crashed process; cells_restored records how much work was saved.
      pstats.cells_total += cells[p].size();
      pstats.cells_restored += it->second.size();
      pstats.cells_rejected += cells[p].size() - it->second.size();
      for (const auto& m : it->second) {
        if (m.ok) {
          ++pstats.cells_ok;
        } else if (m.deferred()) {
          ++pstats.cells_deferred;
        } else {
          ++pstats.cells_failed;
          ++pstats.failures_by_status[m.failure];
        }
        slots[s].add(m);
      }
      if (track != nullptr) {
        // The crashed process took the session's event stream with it; the
        // restoration itself is the only (deterministic) fact left to record.
        track->instant("campaign", "session-restored", 0.0,
                       {{"dataset", dataset.meta().id},
                        {"platform", platforms[p]->name()},
                        {"cells", std::to_string(it->second.size())}});
      }
      writer.complete(s, /*write=*/false);  // its bytes are already on disk
    } else {
      run_session(dataset, split_for(d), *platforms[p], cells[p], quotas[p], options,
                  &slots[s], &pstats, journal.get(), track);
      writer.complete(s, /*write=*/journal != nullptr);
    }
    if (dataset_sessions_left[d].fetch_sub(1) == 1) {
      splits[d].reset();  // last session of this dataset: free the split copy
      if (options.verbose) {
        std::cerr << "[measure] " << dataset.meta().id << " done ("
                  << (datasets_done.fetch_add(1) + 1) << "/" << corpus.size() << ")\n";
      }
    }
  };

  ThreadPool pool(options.threads == 0 ? 0 : static_cast<std::size_t>(options.threads));
  ParallelStats dispatch;
  if (options.schedule == Schedule::kStatic) {
    // The pre-scheduler granularity: one work item per dataset, its
    // platform sessions run back to back.  Kept for A/B benchmarks — one
    // slow dataset serializes its whole platform sweep on one worker.
    pool.parallel_for(
        corpus.size(),
        [&](std::size_t d) {
          for (std::size_t p = 0; p < n_platforms; ++p) {
            run_session_slot(d * n_platforms + p);
          }
        },
        &dispatch);
  } else {
    // Dynamic: sessions dispatched longest-estimated-first over an atomic
    // ticket.  The estimate (configs x samples) orders the big sessions
    // ahead of the tail so no worker is left holding one at the end.
    std::vector<std::size_t> order(n_sessions);
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::uint64_t> estimate(n_sessions);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      estimate[s] = static_cast<std::uint64_t>(cells[s % n_platforms].size()) *
                    static_cast<std::uint64_t>(corpus[s / n_platforms].n_samples());
    }
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return estimate[a] > estimate[b];
    });
    pool.parallel_for_dynamic(
        n_sessions, [&](std::size_t k) { run_session_slot(order[k]); }, &dispatch);
  }

  CampaignResult result;
  for (const auto& t : slots) result.table.append(t);
  result.report.platforms.resize(n_platforms);
  for (std::size_t p = 0; p < n_platforms; ++p) {
    result.report.platforms[p].platform = platforms[p]->name();
    for (std::size_t d = 0; d < corpus.size(); ++d) {
      result.report.platforms[p].merge(slot_stats[d * n_platforms + p]);
    }
  }
  result.report.scheduler.schedule = to_string(options.schedule);
  result.report.scheduler.workers = pool.size();
  result.report.scheduler.sessions = n_sessions;
  result.report.scheduler.sessions_stolen = dispatch.stolen;
  result.report.scheduler.makespan_seconds = dispatch.makespan_seconds;
  result.report.scheduler.worker_busy_seconds = std::move(dispatch.busy_seconds);
  if (options.trace) {
    auto trace = std::make_shared<Trace>();
    for (auto& t : session_tracks) {
      if (t.has_value()) trace->adopt(std::move(*t));
    }
    result.report.trace_summary = trace->summary();
    result.trace = std::move(trace);
  }
  return result;
}

MeasurementTable run_measurements(const std::vector<Dataset>& corpus,
                                  const std::vector<PlatformPtr>& platforms,
                                  const MeasurementOptions& options) {
  return run_campaign(corpus, platforms, options).table;
}

std::string measurement_fingerprint(const std::vector<Dataset>& corpus,
                                    const std::vector<PlatformPtr>& platforms,
                                    const MeasurementOptions& options) {
  std::ostringstream os;
  os << "mlaas-measurements-v2 corpus=" << corpus.size() << " platforms=";
  for (std::size_t i = 0; i < platforms.size(); ++i) {
    if (i > 0) os << ',';
    os << platforms[i]->name();
  }
  os << " seed=" << options.seed << " scale=" << options.scale
     << " para=" << options.max_para_configs << " joint=" << options.joint_sample
     << " test_fraction=" << options.test_fraction
     << " fault=" << options.campaign.fault_rate
     << " profile=" << options.campaign.quota_profile
     << " retries=" << options.campaign.retry_budget;
  // Resilience knobs that change measured rows invalidate caches and
  // journals too.  Non-default values append so that fingerprints from
  // older caches stay valid when the new features are off.
  if (options.campaign.chaos_profile != "none") {
    os << " chaos=" << options.campaign.chaos_profile;
  }
  if (options.campaign.breaker.enabled) {
    os << " breaker=" << options.campaign.breaker.failure_threshold << '/'
       << options.campaign.breaker.cooldown_seconds << '/'
       << options.campaign.breaker.max_probes;
  }
  if (options.campaign.jitter) {
    os << " jitter=1";
  }
  if (options.campaign.max_backoff_seconds != 120.0) {
    os << " max_backoff=" << options.campaign.max_backoff_seconds;
  }
  return os.str();
}

MeasurementTable run_or_load(const std::vector<Dataset>& corpus,
                             const std::vector<PlatformPtr>& platforms,
                             const MeasurementOptions& options_in,
                             const std::string& cache_path,
                             CampaignReport* report) {
  // Cached campaigns journal beside their cache by default, so a crashed
  // run resumes on the next invocation instead of starting over.
  MeasurementOptions options = options_in;
  if (options.campaign.journal_path.empty()) {
    options.campaign.journal_path = cache_path + ".journal";
  }
  const std::string expected = measurement_fingerprint(corpus, platforms, options);
  {
    std::ifstream probe(cache_path);
    if (probe.good()) {
      probe.close();
      try {
        std::string found;
        MeasurementTable table = MeasurementTable::load_csv(cache_path, &found);
        // An empty table for a non-empty corpus means the cache was
        // truncated right after its header: the fingerprint alone is not
        // proof of a complete file.
        const bool plausible = table.size() > 0 || corpus.empty() || platforms.empty();
        if (found == expected && plausible) {
          if (report != nullptr) {
            if (auto loaded = CampaignReport::load_tsv(cache_path + ".campaign.tsv")) {
              *report = std::move(*loaded);
            }
          }
          return table;
        }
        if (options.verbose) {
          std::cerr << "[measure] cache " << cache_path
                    << " has a stale fingerprint; re-running the campaign\n";
        }
      } catch (const std::exception& e) {
        // A truncated or corrupt cache must not kill the campaign: re-run.
        if (options.verbose) {
          std::cerr << "[measure] discarding unreadable cache: " << e.what() << "\n";
        }
      }
    }
  }
  CampaignResult result = run_campaign(corpus, platforms, options);
  result.table.save_csv(cache_path, expected);
  // The cache now holds everything the journal protected; a stale journal
  // left behind would only grow across campaigns.
  CellJournal::remove(options.campaign.journal_path);
  try {
    result.report.save_tsv(cache_path + ".campaign.tsv");
    result.report.save_json(cache_path + ".campaign.json");
  } catch (const std::exception& e) {
    std::cerr << "[measure] could not write campaign report: " << e.what() << "\n";
  }
  if (report != nullptr) *report = std::move(result.report);
  return result.table;
}

std::string default_cache_path(std::uint64_t seed, double scale) {
  std::ostringstream os;
  os << "mlaas_measurements_seed" << seed << "_scale" << scale << ".tsv";
  return os.str();
}

}  // namespace mlaas
