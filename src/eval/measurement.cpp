#include "eval/measurement.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>

#include "data/split.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mlaas {

void MeasurementTable::append(const MeasurementTable& other) {
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

MeasurementTable MeasurementTable::filter(
    const std::function<bool(const Measurement&)>& pred) const {
  MeasurementTable out;
  for (const auto& row : rows_) {
    if (pred(row)) out.add(row);
  }
  return out;
}

MeasurementTable MeasurementTable::for_platform(const std::string& platform) const {
  return filter([&](const Measurement& m) { return m.platform == platform; });
}

MeasurementTable MeasurementTable::for_dataset(const std::string& dataset_id) const {
  return filter([&](const Measurement& m) { return m.dataset_id == dataset_id; });
}

MeasurementTable MeasurementTable::baseline() const {
  return filter([](const Measurement& m) {
    const bool default_clf =
        m.classifier == "auto" || m.classifier == "logistic_regression";
    return m.feature_step == "none" && default_clf && m.default_params;
  });
}

namespace {
std::vector<std::string> distinct(const std::vector<Measurement>& rows,
                                  const std::function<std::string(const Measurement&)>& get) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const auto& row : rows) {
    if (seen.insert(get(row)).second) out.push_back(get(row));
  }
  return out;
}
}  // namespace

std::vector<std::string> MeasurementTable::platforms() const {
  return distinct(rows_, [](const Measurement& m) { return m.platform; });
}

std::vector<std::string> MeasurementTable::dataset_ids() const {
  return distinct(rows_, [](const Measurement& m) { return m.dataset_id; });
}

std::vector<std::string> MeasurementTable::classifiers() const {
  return distinct(rows_, [](const Measurement& m) { return m.classifier; });
}

std::vector<const Measurement*> MeasurementTable::best_per_dataset() const {
  std::map<std::string, const Measurement*> best;
  for (const auto& row : rows_) {
    auto [it, inserted] = best.emplace(row.dataset_id, &row);
    if (!inserted && row.test.f_score > it->second->test.f_score) it->second = &row;
  }
  std::vector<const Measurement*> out;
  out.reserve(best.size());
  for (const auto& [id, row] : best) out.push_back(row);
  return out;
}

void MeasurementTable::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("MeasurementTable: cannot write " + path);
  out << "dataset\tplatform\tfeat\tclf\tparams\tdefault\tf\tacc\tprec\trec\tsec\tsig\n";
  out.precision(10);
  for (const auto& m : rows_) {
    out << m.dataset_id << '\t' << m.platform << '\t' << m.feature_step << '\t'
        << m.classifier << '\t' << m.params << '\t' << (m.default_params ? 1 : 0) << '\t'
        << m.test.f_score << '\t' << m.test.accuracy << '\t' << m.test.precision << '\t'
        << m.test.recall << '\t' << m.train_seconds << '\t' << m.label_signature << '\n';
  }
}

MeasurementTable MeasurementTable::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("MeasurementTable: cannot read " + path);
  MeasurementTable table;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    Measurement m;
    std::string def, f, acc, prec, rec, sec;
    std::getline(ss, m.dataset_id, '\t');
    std::getline(ss, m.platform, '\t');
    std::getline(ss, m.feature_step, '\t');
    std::getline(ss, m.classifier, '\t');
    std::getline(ss, m.params, '\t');
    std::getline(ss, def, '\t');
    std::getline(ss, f, '\t');
    std::getline(ss, acc, '\t');
    std::getline(ss, prec, '\t');
    std::getline(ss, rec, '\t');
    std::getline(ss, sec, '\t');
    std::getline(ss, m.label_signature, '\t');
    m.default_params = def == "1";
    m.test.f_score = std::stod(f);
    m.test.accuracy = std::stod(acc);
    m.test.precision = std::stod(prec);
    m.test.recall = std::stod(rec);
    m.train_seconds = sec.empty() ? 0.0 : std::stod(sec);  // older caches lack the column
    table.add(std::move(m));
  }
  return table;
}

std::vector<PipelineConfig> enumerate_configs(const Platform& platform,
                                              const MeasurementOptions& options) {
  const ControlSurface surface = platform.controls();
  const std::size_t para_cap = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             options.scale * static_cast<double>(options.max_para_configs))));

  std::vector<PipelineConfig> configs;
  std::set<std::string> seen;
  auto push = [&](PipelineConfig config) {
    if (seen.insert(config.key()).second) configs.push_back(std::move(config));
  };

  // Baseline first (black-box platforms only ever have this row).
  push(platform.baseline_config());
  if (!surface.classifier_choice && !surface.parameter_tuning &&
      !surface.feature_selection) {
    return configs;
  }

  // CLF dimension: every classifier at its platform defaults.
  for (const auto& spec : surface.classifiers) {
    PipelineConfig config;
    config.classifier = spec.classifier;
    config.params = spec.default_config();
    push(config);
  }

  // PARA dimension: each classifier's grid (capped), no FEAT.
  if (surface.parameter_tuning) {
    for (const auto& spec : surface.classifiers) {
      for (auto& params : expand_grid(spec, para_cap, options.seed)) {
        PipelineConfig config;
        config.classifier = spec.classifier;
        config.params = std::move(params);
        push(std::move(config));
      }
    }
  }

  // FEAT dimension: every feature step with every classifier at defaults.
  if (surface.feature_selection) {
    for (const auto& feat : surface.feature_steps) {
      for (const auto& spec : surface.classifiers) {
        PipelineConfig config;
        config.feature_step = feat;
        config.classifier = spec.classifier;
        config.params = spec.default_config();
        push(std::move(config));
      }
    }
  }

  // Joint FEAT x CLF x PARA sample (the paper's full cross product, scaled).
  if (surface.feature_selection && surface.parameter_tuning) {
    const std::size_t joint = static_cast<std::size_t>(
        std::llround(options.scale * static_cast<double>(options.joint_sample)));
    Rng rng(derive_seed(options.seed, "joint-" + platform.name()));
    for (std::size_t k = 0; k < joint; ++k) {
      const auto& feat = surface.feature_steps[rng.index(surface.feature_steps.size())];
      const auto& spec = surface.classifiers[rng.index(surface.classifiers.size())];
      const auto grid = expand_grid(spec, para_cap, options.seed);
      PipelineConfig config;
      config.feature_step = feat;
      config.classifier = spec.classifier;
      config.params = grid[rng.index(grid.size())];
      push(std::move(config));
    }
  }
  return configs;
}

std::optional<Measurement> measure_one(const Dataset& dataset, const Platform& platform,
                                       const PipelineConfig& config,
                                       const MeasurementOptions& options) {
  // The split depends only on (study seed, dataset), so every platform and
  // configuration sees the same train/test partition (§3.1).
  const auto split = train_test_split(
      dataset, options.test_fraction,
      derive_seed(options.seed, "split-" + dataset.meta().id), /*stratified=*/true);
  Measurement m;
  m.dataset_id = dataset.meta().id;
  m.platform = platform.name();
  m.feature_step = config.feature_step.empty() ? "none" : config.feature_step;
  m.classifier = config.classifier.empty() ? "auto" : config.classifier;
  m.params = config.params.to_string();
  const ControlSurface surface = platform.controls();
  if (const ClassifierGridSpec* spec = surface.find(config.classifier)) {
    m.default_params = config.params == spec->default_config();
  } else {
    m.default_params = config.params.empty();
  }
  try {
    const auto t0 = std::chrono::steady_clock::now();
    const auto model = platform.train(
        split.train, config,
        derive_seed(options.seed, "train-" + dataset.meta().id + "-" + config.key()));
    m.train_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const auto predictions = model->predict(split.test.x());
    m.test = compute_metrics(split.test.y(), predictions);
    const std::size_t sig = std::min(kLabelSignatureSize, predictions.size());
    m.label_signature.reserve(sig);
    for (std::size_t i = 0; i < sig; ++i) {
      m.label_signature += predictions[i] == 1 ? '1' : '0';
    }
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // config outside this platform's surface
  }
  return m;
}

MeasurementTable run_measurements(const std::vector<Dataset>& corpus,
                                  const std::vector<PlatformPtr>& platforms,
                                  const MeasurementOptions& options) {
  // Pre-enumerate configs once per platform.
  std::vector<std::vector<PipelineConfig>> configs;
  configs.reserve(platforms.size());
  for (const auto& p : platforms) configs.push_back(enumerate_configs(*p, options));

  // One work item per dataset keeps results deterministic under threading.
  std::vector<MeasurementTable> per_dataset(corpus.size());
  ThreadPool pool(options.threads == 0 ? 0 : static_cast<std::size_t>(options.threads));
  pool.parallel_for(corpus.size(), [&](std::size_t d) {
    const Dataset& dataset = corpus[d];
    for (std::size_t p = 0; p < platforms.size(); ++p) {
      for (const auto& config : configs[p]) {
        if (auto m = measure_one(dataset, *platforms[p], config, options)) {
          per_dataset[d].add(std::move(*m));
        }
      }
    }
    if (options.verbose) {
      std::cerr << "[measure] " << dataset.meta().id << " done (" << (d + 1) << "/"
                << corpus.size() << ")\n";
    }
  });

  MeasurementTable table;
  for (const auto& t : per_dataset) table.append(t);
  return table;
}

MeasurementTable run_or_load(const std::vector<Dataset>& corpus,
                             const std::vector<PlatformPtr>& platforms,
                             const MeasurementOptions& options,
                             const std::string& cache_path) {
  {
    std::ifstream probe(cache_path);
    if (probe.good()) return MeasurementTable::load_csv(cache_path);
  }
  MeasurementTable table = run_measurements(corpus, platforms, options);
  table.save_csv(cache_path);
  return table;
}

std::string default_cache_path(std::uint64_t seed, double scale) {
  std::ostringstream os;
  os << "mlaas_measurements_seed" << seed << "_scale" << scale << ".tsv";
  return os.str();
}

}  // namespace mlaas
