// Measurement collection (§3.2, Table 2).
//
// For every (dataset, platform, configuration) triple the campaign runner
// opens a simulated service session (platform/service.h) and drives the
// upload/train/predict round-trip with retries — the in-process analogue of
// the paper's 2.1M cloud measurements, including the rate limits, quotas
// and transient faults the original ~5-month campaign had to survive.
// Cells that exhaust their retry budget or hit permanent errors are kept as
// structured failure rows (Measurement::ok == false) so a partially failed
// campaign still aggregates, the way the paper excluded unreachable
// providers.  Tables are cached to CSV (with a fingerprint header) so every
// bench binary can share one measurement pass; per-platform service
// telemetry is emitted alongside as a campaign report.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ml/metrics.h"
#include "platform/all_platforms.h"
#include "platform/breaker.h"
#include "platform/service.h"
#include "util/metrics.h"

namespace mlaas {

class Trace;

struct Measurement {
  std::string dataset_id;
  std::string platform;
  std::string feature_step;  // "none" when absent
  std::string classifier;    // "auto" for black-box platforms
  std::string params;        // canonical ParamMap string
  bool default_params = false;  // params equal the platform's defaults
  Metrics test;
  /// Training cost in per-thread CPU seconds (CLOCK_THREAD_CPUTIME_ID) — the
  /// "training time" evaluation dimension the paper defers to future work
  /// (§8).  CPU time, not wall time: an oversubscribed campaign (--threads
  /// above the core count) must not inflate the measured training cost of
  /// the configuration it happened to deschedule.
  double train_seconds = 0.0;
  /// Prediction cost over the full test split, in the same per-thread CPU
  /// seconds as train_seconds — the query-side half of the cost picture,
  /// measured under whichever PredictKernel is active.
  double predict_seconds = 0.0;
  /// Predicted labels on the first kLabelSignatureSize test samples (a '0'/
  /// '1' string).  §6.2 trains the classifier-family meta-predictor on
  /// "aggregated performance metrics and the predicted labels"; the
  /// signature carries the latter.  Identical sample order across configs of
  /// a dataset (the split is seeded per dataset).
  std::string label_signature;
  /// Campaign outcome.  ok == false marks a cell whose service round-trip
  /// failed permanently (retries exhausted, quota hit, server error);
  /// `failure` then holds "<step>:<service-status>".  Failed cells carry no
  /// metrics and are excluded from every aggregation.  A cell skipped by an
  /// open circuit breaker instead carries the dedicated "deferred" status
  /// (ok == false, failure == kDeferredStatus) — excluded from aggregation
  /// like a failure, but counted separately in the campaign telemetry.
  bool ok = true;
  std::string failure;

  bool deferred() const;
};

/// Status string of a cell skipped by an open circuit breaker.
inline constexpr const char* kDeferredStatus = "deferred";

inline constexpr std::size_t kLabelSignatureSize = 256;

class MeasurementTable {
 public:
  void add(Measurement m) { rows_.push_back(std::move(m)); }
  void append(const MeasurementTable& other);
  const std::vector<Measurement>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Rows matching a predicate.
  MeasurementTable filter(const std::function<bool(const Measurement&)>& pred) const;
  MeasurementTable for_platform(const std::string& platform) const;
  MeasurementTable for_dataset(const std::string& dataset_id) const;
  /// Successful cells only / failed cells only (failures include deferred
  /// cells; deferred() narrows to just those).
  MeasurementTable succeeded() const;
  MeasurementTable failures() const;
  MeasurementTable deferred() const;

  /// Baseline rows (§3.2): no FEAT, LR (or automated), default parameters.
  MeasurementTable baseline() const;

  /// Distinct values of a column.
  std::vector<std::string> platforms() const;
  std::vector<std::string> dataset_ids() const;
  std::vector<std::string> classifiers() const;

  /// Best test F-score per dataset (the paper's "optimized" aggregation).
  /// Returns (dataset_id, best row) pairs.  Failed cells are skipped.
  std::vector<const Measurement*> best_per_dataset() const;

  /// Write the table; a non-empty `fingerprint` is stored as a '#' header
  /// line so run_or_load can reject stale caches.
  void save_csv(const std::string& path, const std::string& fingerprint = "") const;
  /// Load a table, validating the column count of every row; malformed rows
  /// raise std::runtime_error naming the offending line.  When the file
  /// carries a fingerprint header it is returned via `fingerprint` (empty
  /// otherwise).
  static MeasurementTable load_csv(const std::string& path,
                                   std::string* fingerprint = nullptr);

 private:
  std::vector<Measurement> rows_;
};

/// Serialize/parse one measurement row in the cache-v2 TSV scheme (13
/// tab-separated columns, status last).  Shared by the CSV cache and the
/// write-ahead cell journal so both stay byte-compatible.
std::string measurement_row_to_tsv(const Measurement& m);
/// `context` names the source (path:line) in parse errors.
Measurement measurement_row_from_tsv(const std::string& line, const std::string& context);

// The per-(dataset, platform) session circuit breaker lives in
// platform/breaker.h since the serving router runs one per (platform,
// router) too; the campaign driver keeps its original use — it sleeps out
// the cooldown (kWait/kProbe) and sends the next cell as a half-open probe,
// scoped to one session so campaigns stay deterministic under any thread
// count.

/// Operational knobs of the campaign transport (ISSUE: fault rate, quota
/// profile, retry budget, chaos schedule, breakers, journal) — threaded from
/// StudyOptions and the CLI down to every per-cell service session.
struct CampaignOptions {
  /// Probability any simulated request fails transiently.
  double fault_rate = 0.0;
  /// Named ServiceQuota envelope (see quota_profile()).
  std::string quota_profile = "default";
  /// Max attempts per request before the cell is recorded as failed.
  int retry_budget = 6;
  double initial_backoff_seconds = 1.0;
  /// Cap on the exponential backoff component (see RetryPolicy).
  double max_backoff_seconds = 120.0;
  /// Decorrelated retry jitter (seeded per session; off keeps the campaign
  /// bit-identical to the pure-exponential schedule).
  bool jitter = false;
  /// Named correlated-failure schedule (see make_fault_plan()); "none"
  /// keeps the scalar fault_rate model.
  std::string chaos_profile = "none";
  /// Per-session circuit breaker (default disabled).
  BreakerOptions breaker;
  /// Write-ahead cell journal: every finished cell is appended (fsync'd)
  /// here, and a later run with `resume` set restores completed sessions
  /// instead of re-running them.  Empty disables journaling.  run_or_load
  /// fills this with "<cache_path>.journal" when unset.
  std::string journal_path;
  /// Restore from an existing journal (--resume, the default); false starts
  /// the journal fresh (--fresh).
  bool resume = true;
  /// Test hook: invoked after every journaled cell (crash injection throws
  /// from here).  Not part of the campaign fingerprint.
  std::function<void(std::size_t cells_journaled)> after_cell_hook;

  /// Resolve the per-platform quota under this campaign (profile envelope
  /// with the campaign's fault rate and chaos fault plan applied; the plan
  /// is seeded by (seed, platform)).
  ServiceQuota quota_for(const std::string& platform, std::uint64_t seed = 0) const;
  RetryPolicy retry_policy(std::uint64_t session_seed) const;
};

/// How run_campaign distributes (dataset, platform) sessions over the pool.
///   kStatic  — the pre-scheduler behaviour: one work item per dataset,
///              statically chunked; kept for comparison benchmarks.
///   kDynamic — one work item per session, dispatched longest-estimated-first
///              through ThreadPool::parallel_for_dynamic's atomic ticket.
/// The measured table is byte-identical either way (sessions are
/// independently seeded and results land in preallocated slots); only the
/// wall-clock and the scheduler telemetry differ.
enum class Schedule { kStatic, kDynamic };

/// Parse "static" / "dynamic"; throws std::invalid_argument otherwise.
Schedule parse_schedule(const std::string& name);
const char* to_string(Schedule schedule);

struct MeasurementOptions {
  std::uint64_t seed = 42;
  /// Multiplies the per-classifier parameter-grid cap and the joint sample
  /// toward the paper's full grids.
  double scale = 1.0;
  std::size_t max_para_configs = 12;  // per-classifier PARA cap (scaled)
  std::size_t joint_sample = 40;      // extra FEAT x CLF x PARA joint draws (scaled)
  double test_fraction = 0.3;         // §3.1's 70/30 split
  int threads = 0;                    // 0 = hardware concurrency; < 0 rejected
  Schedule schedule = Schedule::kDynamic;  // session dispatch policy
  bool verbose = false;
  /// Record a deterministic end-to-end trace of every session (service
  /// spans, retry waits, breaker transitions) — one TraceTrack per session,
  /// assembled in canonical order after the pool joins.  Off by default;
  /// tracing changes no measured row and no legacy report byte, and is
  /// deliberately excluded from measurement_fingerprint so existing caches
  /// and journals stay valid.
  bool trace = false;
  /// Install a session-scoped TrainContext so every cell training on the
  /// session's one uploaded train split reuses the tree family's column
  /// cache + presorted orders and kNN's cached norms (ml/tree/trainer.h).
  /// Data-only state with no admission, clock or fault-RNG effect: tables,
  /// journals and traces are byte-identical with it on or off, so it is
  /// excluded from measurement_fingerprint like `trace`.
  bool reuse_train_state = true;
  CampaignOptions campaign;           // service-transport envelope
};

/// Per-platform campaign telemetry: merged service counters plus cell
/// accounting, aggregated across every (dataset, platform) session.
struct PlatformCampaignStats {
  std::string platform;
  ServiceStats service;
  std::size_t retries = 0;
  double backoff_seconds = 0.0;   // simulated sleep (backoff + rate stalls)
  double simulated_seconds = 0.0; // simulated campaign wall-clock
  std::size_t cells_total = 0;    // configs x datasets offered
  std::size_t cells_ok = 0;
  std::size_t cells_failed = 0;   // excludes deferred cells
  std::size_t cells_rejected = 0; // bad-request: config outside the surface
  std::size_t cells_deferred = 0; // skipped by an open circuit breaker
  std::size_t cells_restored = 0; // resumed from the write-ahead journal
  std::size_t breaker_trips = 0;  // times a session breaker opened
  double outage_seconds = 0.0;    // simulated seconds inside outage windows
  std::map<std::string, std::size_t> failures_by_status;

  /// Scalar telemetry in declaration order — drives merge() and the metrics
  /// registry (util/metrics.h).  `service` and `failures_by_status` have
  /// their own merge paths and are visited separately.
  template <typename Self, typename Visitor>
  static void visit_fields(Self& self, Visitor&& visit) {
    visit("retries", self.retries);
    visit("backoff_seconds", self.backoff_seconds);
    visit("simulated_seconds", self.simulated_seconds);
    visit("cells_total", self.cells_total);
    visit("cells_ok", self.cells_ok);
    visit("cells_failed", self.cells_failed);
    visit("cells_rejected", self.cells_rejected);
    visit("cells_deferred", self.cells_deferred);
    visit("cells_restored", self.cells_restored);
    visit("breaker_trips", self.breaker_trips);
    visit("outage_seconds", self.outage_seconds);
  }

  void merge(const PlatformCampaignStats& other);
  /// Fraction of attempted cells that produced a measurement.
  double coverage() const;
};

/// Telemetry of the session scheduler for one campaign: how evenly the
/// (dataset, platform) sessions spread over the pool.  Unlike the platform
/// rows, these numbers are real wall-clock and thread-count dependent — they
/// describe the run, not the measurements, and are excluded from every
/// determinism comparison.
struct SchedulerStats {
  std::string schedule = "static";   // "static" or "dynamic"
  std::size_t workers = 0;           // pool size actually used
  std::size_t sessions = 0;          // (dataset, platform) work items
  std::size_t sessions_stolen = 0;   // sessions run off their static-owner worker
  double makespan_seconds = 0.0;     // wall seconds of the dispatch
  std::vector<double> worker_busy_seconds;  // per-worker time inside sessions

  /// Scalar telemetry for the metrics registry.  Wall-clock numbers stay
  /// here (and out of every trace): the registry snapshot of a report is a
  /// description of the run, not a determinism-checked artifact.
  template <typename Self, typename Visitor>
  static void visit_fields(Self& self, Visitor&& visit) {
    visit("workers", self.workers);
    visit("sessions", self.sessions);
    visit("sessions_stolen", self.sessions_stolen);
    visit("makespan_seconds", self.makespan_seconds);
  }

  double busy_seconds() const;  // sum over workers
  /// max(worker busy) / mean(worker busy); 1.0 = perfectly balanced.
  double imbalance() const;
};

/// Campaign-wide telemetry report, one entry per platform (roster order).
struct CampaignReport {
  std::vector<PlatformCampaignStats> platforms;
  SchedulerStats scheduler;
  /// Trace summary (Trace::summary()) of a traced campaign; empty when
  /// tracing was off.  Rides the TSV sidecar as a "# trace" trailer line so
  /// untraced report bytes are unchanged.
  std::string trace_summary;

  PlatformCampaignStats totals() const;
  double coverage() const { return totals().coverage(); }

  /// Every platform's telemetry plus the scheduler's, registered into one
  /// registry in canonical (roster, field-declaration) order.
  MetricsRegistry metrics() const;

  void save_tsv(const std::string& path) const;
  void save_json(const std::string& path) const;
  /// Reload a report written by save_tsv (used on measurement-cache hits);
  /// nullopt when the file is missing or malformed.
  static std::optional<CampaignReport> load_tsv(const std::string& path);
};

/// The configuration set measured for one platform (§3.2): the baseline, all
/// FEAT x default-CLF combos, all CLF defaults, each classifier's PARA grid,
/// FEAT x CLF defaults, and a seeded joint FEAT x CLF x PARA sample.
/// Deduplicated by config key.
std::vector<PipelineConfig> enumerate_configs(const Platform& platform,
                                              const MeasurementOptions& options);

struct CampaignResult {
  MeasurementTable table;   // ok rows and failure rows
  CampaignReport report;
  /// Full event trace when MeasurementOptions::trace was set; null otherwise.
  /// Tracks are in canonical session order (dataset-major, platform-minor),
  /// so Trace::write_chrome_json is byte-identical across thread counts,
  /// schedules and reruns.
  std::shared_ptr<const Trace> trace;
};

/// Run the full study through the simulated service layer: every platform
/// on every corpus dataset, one MlaasService session per (dataset,
/// platform) cell, upload/train/predict with retries.  Deterministic in
/// (options, corpus, platforms) regardless of thread count, schedule and
/// steal order: sessions are independently seeded, write into preallocated
/// per-session slots, and the per-dataset split is computed once behind a
/// std::call_once.  With campaign.fault_rate == 0 the measurements are
/// identical to direct Platform::train calls.
///
/// Crash safety: with campaign.journal_path set, every finished cell is
/// appended to an fsync'd write-ahead journal and every finished session
/// gets a completion marker.  With campaign.resume, sessions whose marker
/// made it to disk before a crash are restored from the journal; sessions
/// caught mid-flight re-run from scratch (each session's request stream is
/// independently seeded, so a re-run is bit-identical to the uninterrupted
/// run — wall-clock train_seconds / predict_seconds excepted).
CampaignResult run_campaign(const std::vector<Dataset>& corpus,
                            const std::vector<PlatformPtr>& platforms,
                            const MeasurementOptions& options);

/// Back-compat wrapper: run_campaign's table only.
MeasurementTable run_measurements(const std::vector<Dataset>& corpus,
                                  const std::vector<PlatformPtr>& platforms,
                                  const MeasurementOptions& options);

/// Train/evaluate one (dataset, platform, config) in-process (no service
/// envelope) and return the row; nullopt when the platform rejects the
/// config.  Unexpected platform errors yield a failure row (ok == false)
/// instead of propagating.
std::optional<Measurement> measure_one(const Dataset& dataset, const Platform& platform,
                                       const PipelineConfig& config,
                                       const MeasurementOptions& options);

/// Identity of a measurement pass: format version, corpus size, platform
/// roster and the knobs that shape the table.  Stored in the cache header;
/// a mismatch forces a re-run.
std::string measurement_fingerprint(const std::vector<Dataset>& corpus,
                                    const std::vector<PlatformPtr>& platforms,
                                    const MeasurementOptions& options);

/// Cache wrapper: load `cache_path` when present, readable and carrying a
/// matching fingerprint; otherwise run the campaign and save the table plus
/// its telemetry sidecars (cache_path + ".campaign.tsv" / ".campaign.json").
/// `report`, when non-null, receives the campaign telemetry (reloaded from
/// the sidecar on cache hits when available).
MeasurementTable run_or_load(const std::vector<Dataset>& corpus,
                             const std::vector<PlatformPtr>& platforms,
                             const MeasurementOptions& options,
                             const std::string& cache_path,
                             CampaignReport* report = nullptr);

/// Default cache path for a seed/scale pair (shared by all bench binaries).
std::string default_cache_path(std::uint64_t seed, double scale);

}  // namespace mlaas
