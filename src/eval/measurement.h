// Measurement collection (§3.2, Table 2).
//
// For every (dataset, platform, configuration) triple the runner trains a
// model on the 70% split and records test-set metrics on the held-out 30% —
// one row per measurement, the in-process analogue of the paper's 2.1M
// cloud measurements.  Tables are cached to CSV so every bench binary can
// share one measurement pass.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ml/metrics.h"
#include "platform/all_platforms.h"

namespace mlaas {

struct Measurement {
  std::string dataset_id;
  std::string platform;
  std::string feature_step;  // "none" when absent
  std::string classifier;    // "auto" for black-box platforms
  std::string params;        // canonical ParamMap string
  bool default_params = false;  // params equal the platform's defaults
  Metrics test;
  /// Wall-clock training cost — the "training time" evaluation dimension the
  /// paper defers to future work (§8).
  double train_seconds = 0.0;
  /// Predicted labels on the first kLabelSignatureSize test samples (a '0'/
  /// '1' string).  §6.2 trains the classifier-family meta-predictor on
  /// "aggregated performance metrics and the predicted labels"; the
  /// signature carries the latter.  Identical sample order across configs of
  /// a dataset (the split is seeded per dataset).
  std::string label_signature;
};

inline constexpr std::size_t kLabelSignatureSize = 256;

class MeasurementTable {
 public:
  void add(Measurement m) { rows_.push_back(std::move(m)); }
  void append(const MeasurementTable& other);
  const std::vector<Measurement>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Rows matching a predicate.
  MeasurementTable filter(const std::function<bool(const Measurement&)>& pred) const;
  MeasurementTable for_platform(const std::string& platform) const;
  MeasurementTable for_dataset(const std::string& dataset_id) const;

  /// Baseline rows (§3.2): no FEAT, LR (or automated), default parameters.
  MeasurementTable baseline() const;

  /// Distinct values of a column.
  std::vector<std::string> platforms() const;
  std::vector<std::string> dataset_ids() const;
  std::vector<std::string> classifiers() const;

  /// Best test F-score per dataset (the paper's "optimized" aggregation).
  /// Returns (dataset_id, best row) pairs.
  std::vector<const Measurement*> best_per_dataset() const;

  void save_csv(const std::string& path) const;
  static MeasurementTable load_csv(const std::string& path);

 private:
  std::vector<Measurement> rows_;
};

struct MeasurementOptions {
  std::uint64_t seed = 42;
  /// Multiplies the per-classifier parameter-grid cap and the joint sample
  /// toward the paper's full grids.
  double scale = 1.0;
  std::size_t max_para_configs = 12;  // per-classifier PARA cap (scaled)
  std::size_t joint_sample = 40;      // extra FEAT x CLF x PARA joint draws (scaled)
  double test_fraction = 0.3;         // §3.1's 70/30 split
  int threads = 0;                    // 0 = hardware concurrency
  bool verbose = false;
};

/// The configuration set measured for one platform (§3.2): the baseline, all
/// FEAT x default-CLF combos, all CLF defaults, each classifier's PARA grid,
/// FEAT x CLF defaults, and a seeded joint FEAT x CLF x PARA sample.
/// Deduplicated by config key.
std::vector<PipelineConfig> enumerate_configs(const Platform& platform,
                                              const MeasurementOptions& options);

/// Run the full study: every platform on every corpus dataset.
MeasurementTable run_measurements(const std::vector<Dataset>& corpus,
                                  const std::vector<PlatformPtr>& platforms,
                                  const MeasurementOptions& options);

/// Train/evaluate one (dataset, platform, config) and return the row;
/// nullopt when the platform rejects the config.
std::optional<Measurement> measure_one(const Dataset& dataset, const Platform& platform,
                                       const PipelineConfig& config,
                                       const MeasurementOptions& options);

/// Cache wrapper: load `cache_path` when present, otherwise compute via
/// run_measurements and save.
MeasurementTable run_or_load(const std::vector<Dataset>& corpus,
                             const std::vector<PlatformPtr>& platforms,
                             const MeasurementOptions& options,
                             const std::string& cache_path);

/// Default cache path for a seed/scale pair (shared by all bench binaries).
std::string default_cache_path(std::uint64_t seed, double scale);

}  // namespace mlaas
