// Partial-knowledge analysis (§5.2, Figure 8): expected best F-score when a
// user experiments with a random subset of k classifiers instead of all of
// them.
//
// The expectation over all C(n,k) subsets is computed in closed form: sort
// per-dataset best-per-classifier F-scores descending; the i-th best is the
// subset maximum with probability C(n-i, k-1) / C(n, k).
#pragma once

#include <string>
#include <vector>

#include "eval/measurement.h"

namespace mlaas {

struct SubsetCurvePoint {
  int k = 0;                 // number of classifiers explored
  double expected_best_f = 0.0;
  double std_dev = 0.0;      // spread of the subset maxima across datasets
};

struct SubsetCurve {
  std::string platform;
  std::vector<SubsetCurvePoint> points;  // k = 1 .. n_classifiers
};

/// Expected best-of-k-random-classifiers curve for one platform, averaged
/// across datasets.  Uses each classifier's best configuration per dataset
/// (FEAT held at none, parameters free), matching §5.2.
SubsetCurve classifier_subset_curve(const MeasurementTable& table,
                                    const std::string& platform);

/// E[max of a uniformly random k-subset] given per-item values.
double expected_subset_max(std::vector<double> values, int k);

}  // namespace mlaas
