#include "eval/family_predictor.h"

#include <algorithm>
#include <set>

#include "data/dataset.h"
#include "data/split.h"
#include "ml/metrics.h"
#include "ml/model_selection/cross_validation.h"
#include "ml/registry.h"
#include "util/rng.h"

namespace mlaas {

std::vector<double> family_features(const Measurement& m) {
  std::vector<double> features{m.test.f_score, m.test.accuracy, m.test.precision,
                               m.test.recall};
  // Predicted-label signature bits, zero-padded to a fixed width so every
  // row of a meta-dataset has the same dimensionality.
  features.reserve(4 + kLabelSignatureSize);
  for (std::size_t i = 0; i < kLabelSignatureSize; ++i) {
    features.push_back(i < m.label_signature.size() && m.label_signature[i] == '1' ? 1.0
                                                                                   : 0.0);
  }
  return features;
}

namespace {

const std::set<std::string> kGroundTruthPlatforms = {"BigML", "PredictionIO", "Microsoft",
                                                     "Local"};

/// Experiments with known classifier choice on one dataset, as a meta
/// dataset: features = observable metrics, label = 1 for non-linear.
Dataset build_meta_dataset(const MeasurementTable& table, const std::string& dataset_id) {
  std::vector<std::vector<double>> feats;
  std::vector<int> labels;
  for (const auto& m : table.rows()) {
    if (m.dataset_id != dataset_id) continue;
    if (m.classifier == "auto" || kGroundTruthPlatforms.count(m.platform) == 0) continue;
    feats.push_back(family_features(m));
    labels.push_back(classifier_is_linear(m.classifier) ? 0 : 1);
  }
  const std::size_t width = feats.empty() ? 0 : feats.front().size();
  Matrix x(feats.size(), width);
  for (std::size_t r = 0; r < feats.size(); ++r) {
    for (std::size_t c = 0; c < width; ++c) x(r, c) = feats[r][c];
  }
  Dataset meta(std::move(x), std::move(labels));
  meta.meta().id = "meta-" + dataset_id;
  return meta;
}

ParamMap meta_rf_params() {
  // Random Forests, the paper's choice of meta-classifier (§6.2).
  return ParamMap{{"n_estimators", 60LL}, {"max_depth", 14LL}};
}

}  // namespace

FamilyPredictorReport train_family_predictors(const MeasurementTable& table,
                                              std::uint64_t seed, double select_threshold) {
  FamilyPredictorReport report;
  for (const auto& dataset_id : table.dataset_ids()) {
    DatasetFamilyPredictor predictor;
    predictor.dataset_id = dataset_id;

    const Dataset meta = build_meta_dataset(table, dataset_id);
    const std::size_t pos = count_positive(meta.y());
    // Need both families represented with enough samples to split 70/30 and
    // run 5-fold CV.
    if (meta.n_samples() < 20 || pos < 5 || meta.n_samples() - pos < 5) {
      report.predictors.push_back(std::move(predictor));
      continue;
    }
    predictor.trainable = true;

    const auto split = train_test_split(meta, 0.3, derive_seed(seed, "meta-" + dataset_id),
                                        /*stratified=*/true);
    // 5-fold CV on the 70% split estimates validation performance (Fig 12).
    const CvResult cv = cross_validate("random_forest", meta_rf_params(), split.train, 5,
                                       derive_seed(seed, "meta-cv-" + dataset_id));
    predictor.validation_f = cv.mean.f_score;

    auto model = make_classifier("random_forest", meta_rf_params(),
                                 derive_seed(seed, "meta-fit-" + dataset_id));
    model->fit(split.train.x(), split.train.y());
    predictor.test_f = f1_score(split.test.y(), model->predict(split.test.x()));
    predictor.model = std::shared_ptr<Classifier>(std::move(model));

    if (predictor.validation_f > select_threshold) report.selected.push_back(dataset_id);
    report.predictors.push_back(std::move(predictor));
  }
  return report;
}

std::vector<BlackBoxChoice> predict_blackbox_choices(const FamilyPredictorReport& report,
                                                     const MeasurementTable& table,
                                                     const std::string& platform) {
  std::vector<BlackBoxChoice> out;
  const std::set<std::string> selected(report.selected.begin(), report.selected.end());
  for (const auto& predictor : report.predictors) {
    if (!predictor.model || selected.count(predictor.dataset_id) == 0) continue;
    const MeasurementTable rows =
        table.for_platform(platform).for_dataset(predictor.dataset_id);
    if (rows.empty()) continue;

    const std::size_t width = family_features(rows.rows()[0]).size();
    Matrix x(rows.size(), width);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const auto f = family_features(rows.rows()[r]);
      for (std::size_t c = 0; c < width; ++c) x(r, c) = f[c];
    }
    const auto labels = predictor.model->predict(x);
    std::size_t nonlinear = 0;
    for (int v : labels) nonlinear += v == 1 ? 1 : 0;

    BlackBoxChoice choice;
    choice.dataset_id = predictor.dataset_id;
    choice.n_rows = rows.size();
    choice.nonlinear_fraction =
        static_cast<double>(nonlinear) / static_cast<double>(rows.size());
    choice.family = choice.nonlinear_fraction > 0.5 ? ClassifierFamily::kNonLinear
                                                    : ClassifierFamily::kLinear;
    out.push_back(std::move(choice));
  }
  return out;
}

}  // namespace mlaas
