// Per-control attribution (§4.2, Figure 5): how much does tuning ONE control
// dimension — Feature selection (FEAT), Classifier choice (CLF), or
// Parameter tuning (PARA) — improve average F-score over the baseline, with
// the other dimensions held at baseline settings?
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "eval/measurement.h"

namespace mlaas {

enum class ControlDimension { kFeat, kClf, kPara };

std::string to_string(ControlDimension dim);

struct ControlImprovement {
  std::string platform;
  ControlDimension dimension;
  double baseline_f = 0.0;
  double tuned_f = 0.0;
  /// Relative improvement (tuned - baseline) / baseline, Figure 5's y-axis.
  double relative_improvement = 0.0;
  bool supported = true;  // false = white box in the figure
};

/// Rows of the measurement table that vary ONLY the given dimension (others
/// at baseline: no FEAT, LR, default params).
MeasurementTable single_dimension_rows(const MeasurementTable& table,
                                       const std::string& platform, ControlDimension dim);

/// Figure 5: improvement per platform per dimension.  Unsupported
/// (platform, dimension) pairs are returned with supported=false.
std::vector<ControlImprovement> control_improvements(const MeasurementTable& table,
                                                     const std::vector<std::string>& platforms);

}  // namespace mlaas
