#include "eval/variation.h"

#include <algorithm>
#include <map>

#include "linalg/stats.h"

namespace mlaas {

namespace {

std::vector<double> config_averages_of(const MeasurementTable& rows) {
  // config key -> (sum, count) across datasets.
  std::map<std::string, std::pair<double, std::size_t>> acc;
  for (const auto& m : rows.rows()) {
    const std::string key = m.feature_step + "|" + m.classifier + "|" + m.params;
    auto& slot = acc[key];
    slot.first += m.test.f_score;
    slot.second += 1;
  }
  std::vector<double> out;
  out.reserve(acc.size());
  for (const auto& [key, sum_count] : acc) {
    out.push_back(sum_count.first / static_cast<double>(sum_count.second));
  }
  return out;
}

VariationSummary summarize_config_averages(const std::string& platform,
                                           std::vector<double> averages) {
  VariationSummary s;
  s.platform = platform;
  s.n_configs = averages.size();
  if (averages.empty()) return s;
  s.min_f = min_value(averages);
  s.max_f = max_value(averages);
  s.q1_f = quantile(averages, 0.25);
  s.median_f = quantile(averages, 0.5);
  s.q3_f = quantile(averages, 0.75);
  return s;
}

}  // namespace

std::vector<double> config_averages(const MeasurementTable& table,
                                    const std::string& platform) {
  return config_averages_of(table.for_platform(platform));
}

VariationSummary overall_variation(const MeasurementTable& table, const std::string& platform) {
  return summarize_config_averages(platform, config_averages(table, platform));
}

std::vector<DimensionVariation> dimension_variations(const MeasurementTable& table,
                                                     const std::vector<std::string>& platforms) {
  std::vector<DimensionVariation> out;
  for (const auto& platform : platforms) {
    const double overall = overall_variation(table, platform).range();
    for (ControlDimension dim :
         {ControlDimension::kFeat, ControlDimension::kClf, ControlDimension::kPara}) {
      DimensionVariation v;
      v.platform = platform;
      v.dimension = dim;
      const auto averages =
          config_averages_of(single_dimension_rows(table, platform, dim));
      v.supported = averages.size() > 1;
      if (v.supported) {
        v.range = max_value(averages) - min_value(averages);
        v.normalized_range = overall > 0 ? v.range / overall : 0.0;
      }
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace mlaas
