#include "eval/report.h"

#include <algorithm>
#include <map>

#include "ml/registry.h"
#include "util/table.h"

namespace mlaas {

std::string render_platform_summaries(const std::string& title,
                                      const std::vector<PlatformSummary>& summaries) {
  TextTable t({"Platform", "Avg Fried. Rank", "Avg F-score", "Avg Accuracy", "Avg Precision",
               "Avg Recall"});
  for (const auto& s : summaries) {
    t.add_row({s.platform, fmt(s.avg_rank, 1), fmt_with_rank(s.avg.f_score, s.rank_f),
               fmt_with_rank(s.avg.accuracy, s.rank_acc),
               fmt_with_rank(s.avg.precision, s.rank_prec),
               fmt_with_rank(s.avg.recall, s.rank_rec)});
  }
  return title + "\n" + t.str();
}

namespace {
const PlatformSummary* find_summary(const std::vector<PlatformSummary>& summaries,
                                    const std::string& platform) {
  for (const auto& s : summaries) {
    if (s.platform == platform) return &s;
  }
  return nullptr;
}
}  // namespace

std::string render_fig4(const std::vector<PlatformSummary>& baseline,
                        const std::vector<PlatformSummary>& optimized,
                        const std::vector<std::string>& platform_order) {
  TextTable t({"Platform (complexity ->)", "Baseline F", "Optimized F", "+/- (std err)"});
  for (const auto& p : platform_order) {
    const PlatformSummary* b = find_summary(baseline, p);
    const PlatformSummary* o = find_summary(optimized, p);
    if (b == nullptr || o == nullptr) continue;
    t.add_row({p, fmt(b->avg.f_score), fmt(o->avg.f_score), fmt(o->f_std_error, 4)});
  }
  return "Figure 4: baseline vs optimized average F-score (complexity-ordered)\n" + t.str();
}

std::string render_fig5(const std::vector<ControlImprovement>& improvements) {
  // Group by dimension, columns per platform, as in the figure's panels.
  TextTable t({"Platform", "Control", "Baseline F", "Tuned F", "Improvement"});
  for (const auto& ci : improvements) {
    if (!ci.supported) {
      t.add_row({ci.platform, to_string(ci.dimension), fmt(ci.baseline_f), "-", "no data"});
    } else {
      t.add_row({ci.platform, to_string(ci.dimension), fmt(ci.baseline_f), fmt(ci.tuned_f),
                 fmt_pct(ci.relative_improvement)});
    }
  }
  return "Figure 5: relative F-score improvement over baseline per control dimension\n" +
         t.str();
}

std::string render_fig6(const std::vector<VariationSummary>& variations) {
  TextTable t({"Platform (complexity ->)", "Min F", "Q1", "Median", "Q3", "Max F", "Range",
               "#Configs"});
  for (const auto& v : variations) {
    t.add_row({v.platform, fmt(v.min_f), fmt(v.q1_f), fmt(v.median_f), fmt(v.q3_f),
               fmt(v.max_f), fmt(v.range()), std::to_string(v.n_configs)});
  }
  return "Figure 6: performance variation across configurations (per-config "
         "cross-dataset average F)\n" +
         t.str();
}

std::string render_fig7(const std::vector<DimensionVariation>& variations) {
  TextTable t({"Platform", "Control", "Range", "Normalized by overall"});
  for (const auto& v : variations) {
    if (!v.supported) {
      t.add_row({v.platform, to_string(v.dimension), "-", "no data"});
    } else {
      t.add_row({v.platform, to_string(v.dimension), fmt(v.range), fmt(v.normalized_range, 2)});
    }
  }
  return "Figure 7: performance variation from tuning each control alone\n" + t.str();
}

std::string render_fig8(const std::vector<SubsetCurve>& curves) {
  std::size_t max_k = 0;
  for (const auto& c : curves) max_k = std::max(max_k, c.points.size());
  std::vector<std::string> header{"k classifiers"};
  for (const auto& c : curves) header.push_back(c.platform);
  TextTable t(std::move(header));
  for (std::size_t k = 1; k <= max_k; ++k) {
    std::vector<std::string> row{std::to_string(k)};
    for (const auto& c : curves) {
      const auto it = std::find_if(c.points.begin(), c.points.end(),
                                   [&](const SubsetCurvePoint& p) {
                                     return static_cast<std::size_t>(p.k) == k;
                                   });
      row.push_back(it == c.points.end() ? "" : fmt(it->expected_best_f));
    }
    t.add_row(std::move(row));
  }
  return "Figure 8: expected best F-score vs number of classifiers explored\n" + t.str();
}

std::string render_table4(const std::string& title,
                          const std::vector<std::string>& platforms,
                          const std::vector<std::vector<std::pair<std::string, double>>>& tops) {
  std::vector<std::string> header{"Rank"};
  for (const auto& p : platforms) header.push_back(p);
  TextTable t(std::move(header));
  std::size_t depth = 0;
  for (const auto& top : tops) depth = std::max(depth, top.size());
  depth = std::min<std::size_t>(depth, 4);  // Table 4 reports the top four
  for (std::size_t rank = 0; rank < depth; ++rank) {
    std::vector<std::string> row{std::to_string(rank + 1)};
    for (const auto& top : tops) {
      if (rank < top.size()) {
        row.push_back(classifier_abbrev(top[rank].first) + " (" +
                      fmt_pct(top[rank].second) + ")");
      } else {
        row.emplace_back();
      }
    }
    t.add_row(std::move(row));
  }
  return title + "\n" + t.str();
}

}  // namespace mlaas
