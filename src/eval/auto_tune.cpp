#include "eval/auto_tune.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/split.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace mlaas {

std::vector<PipelineConfig> sample_configs(const Platform& platform, std::size_t count,
                                           std::uint64_t seed) {
  const ControlSurface surface = platform.controls();
  if (surface.classifiers.empty()) {
    throw std::invalid_argument("sample_configs: platform exposes no controls");
  }
  Rng rng(derive_seed(seed, "autotune-sample"));
  std::vector<PipelineConfig> configs;
  configs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    PipelineConfig config;
    if (surface.feature_selection && rng.chance(0.5)) {
      config.feature_step = surface.feature_steps[rng.index(surface.feature_steps.size())];
    }
    const ClassifierGridSpec& spec =
        surface.classifiers[rng.index(surface.classifiers.size())];
    config.classifier = spec.classifier;
    config.params = spec.fixed;
    for (const auto& param : spec.params) {
      const auto values = param.sweep_values();
      config.params.set(param.name, values[rng.index(values.size())]);
    }
    if (!surface.parameter_tuning) config.params = spec.default_config();
    configs.push_back(std::move(config));
  }
  return configs;
}

AutoTuneResult auto_tune(const Platform& platform, const Dataset& train,
                         const AutoTuneOptions& options) {
  if (options.budget < 2) throw std::invalid_argument("auto_tune: budget too small");
  const int rounds = std::max(1, options.rounds);
  const int eta = std::max(2, options.eta);

  // Budget split: with n0 starting candidates halved each round, total cost
  // is n0 * (1 + 1/eta + 1/eta^2 + ...) <= n0 * eta/(eta-1).
  const double series = static_cast<double>(eta) / (eta - 1);
  const auto n0 = static_cast<std::size_t>(
      std::max(2.0, std::floor(static_cast<double>(options.budget) / series)));

  // Fixed validation split; training subsample grows each round.
  const auto split = train_test_split(train, options.validation_fraction,
                                      derive_seed(options.seed, "autotune-split"), true);

  struct Candidate {
    PipelineConfig config;
    double f = 0.0;
  };
  std::vector<Candidate> field;
  for (auto& config : sample_configs(platform, n0, options.seed)) {
    field.push_back({std::move(config), 0.0});
  }

  AutoTuneResult result;
  Rng rng(derive_seed(options.seed, "autotune-subsample"));
  for (int round = 0; round < rounds && field.size() > 1; ++round) {
    // Data fraction ramps 1/eta^(rounds-1-round) ... up to 1.
    const double fraction =
        1.0 / std::pow(static_cast<double>(eta), static_cast<double>(rounds - 1 - round));
    const auto n_sub = static_cast<std::size_t>(
        std::max(16.0, fraction * static_cast<double>(split.train.n_samples())));
    Dataset subsample = split.train;
    if (n_sub < split.train.n_samples()) {
      auto idx = rng.sample_without_replacement(split.train.n_samples(), n_sub);
      std::sort(idx.begin(), idx.end());
      subsample = split.train.subset(idx);
    }
    for (auto& candidate : field) {
      try {
        const auto model = platform.train(
            subsample, candidate.config,
            derive_seed(options.seed, "autotune-" + candidate.config.key()));
        candidate.f = f1_score(split.test.y(), model->predict(split.test.x()));
      } catch (const std::invalid_argument&) {
        candidate.f = -1.0;  // invalid combination: eliminated this round
      }
      ++result.evaluations;
    }
    std::stable_sort(field.begin(), field.end(),
                     [](const Candidate& a, const Candidate& b) { return a.f > b.f; });
    const std::size_t keep = std::max<std::size_t>(
        1, field.size() / static_cast<std::size_t>(eta));
    field.resize(keep);
  }

  result.best_config = field.front().config;
  result.best_validation_f = field.front().f;
  return result;
}

}  // namespace mlaas
