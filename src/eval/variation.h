// Performance-variation analysis (§5.1 Figure 6, §5.2 Figure 7).
//
// For each configuration of a platform, average its F-score across all
// datasets; the spread of those per-configuration averages is the
// platform's performance variation — the "risk" of a poorly chosen
// configuration.
#pragma once

#include <string>
#include <vector>

#include "eval/attribution.h"
#include "eval/measurement.h"

namespace mlaas {

struct VariationSummary {
  std::string platform;
  double min_f = 0.0;   // worst configuration's cross-dataset average
  double q1_f = 0.0;
  double median_f = 0.0;
  double q3_f = 0.0;
  double max_f = 0.0;   // best configuration's cross-dataset average
  std::size_t n_configs = 0;

  double range() const { return max_f - min_f; }
};

/// Per-configuration cross-dataset average F-scores of a platform.
std::vector<double> config_averages(const MeasurementTable& table,
                                    const std::string& platform);

/// Figure 6: variation across ALL configurations.
VariationSummary overall_variation(const MeasurementTable& table, const std::string& platform);

struct DimensionVariation {
  std::string platform;
  ControlDimension dimension;
  double range = 0.0;             // variation when tuning this dim alone
  double normalized_range = 0.0;  // Figure 7's y-axis: range / overall range
  bool supported = true;
};

/// Figure 7: per-dimension variation, normalized by the overall variation.
std::vector<DimensionVariation> dimension_variations(const MeasurementTable& table,
                                                     const std::vector<std::string>& platforms);

}  // namespace mlaas
