// Friedman ranking (§3.2, Table 3).
//
// For each dataset, the compared entities (platforms, classifiers, ...) are
// ranked by a metric (rank 1 = best, ties share fractional ranks); the
// Friedman rank of an entity is its rank averaged across datasets.  A lower
// Friedman rank means consistently better performance.  Also provides the
// Friedman chi-squared test statistic used to check that the ranking is
// statistically meaningful.
#pragma once

#include <string>
#include <vector>

namespace mlaas {

struct FriedmanResult {
  std::vector<std::string> entities;
  std::vector<double> average_rank;  // parallel to entities
  double chi_squared = 0.0;          // Friedman test statistic
  std::size_t n_blocks = 0;          // datasets actually compared
};

/// scores[d][e] = metric of entity e on dataset d (higher = better).
/// Rows with any NaN are skipped.
FriedmanResult friedman_ranking(const std::vector<std::string>& entities,
                                const std::vector<std::vector<double>>& scores);

}  // namespace mlaas
