// Blocked dense inference kernels shared by the prediction paths.
//
// Every kernel here is an exact-equivalence rewrite of a naive per-row
// loop: the accumulation order *per output element* is strictly sequential
// (index 0, 1, 2, ... — the same order dot()/squared_distance() use), so
// each output double is bit-identical to the reference loop it replaces.
// The speedup comes from instruction-level parallelism, not reassociation:
// the naive loops are latency-bound on one floating-point accumulation
// chain per output, and processing four independent outputs per iteration
// runs four chains concurrently without touching any chain's internal
// order.  See DESIGN.md "Prediction kernels".
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace mlaas {

/// out[r] = dot(x.row(r), w) for every row — the linear-family margin
/// kernel.  Four rows per block share one pass over w; each row's
/// accumulation is sequential in column order, bit-identical to
/// Matrix::multiply(w)[r].
void matvec_into(const Matrix& x, std::span<const double> w, std::span<double> out);

/// out[i] = dot(w.row(i), v) + bias[i] for every row of w — one dense layer
/// of the MLP forward pass over a single activation vector.  Bit-identical
/// to w.multiply(v)[i] + bias[i].
void dense_layer_into(const Matrix& w, std::span<const double> v,
                      std::span<const double> bias, std::span<double> out);

/// out[i] = sum_c (q[c] - rows.row(i)[c])^2 — the subtract-square distance
/// block (RBF-SVM form).  Four candidate rows per iteration; per-pair
/// accumulation is sequential in c, bit-identical to squared_distance().
void squared_distance_block(std::span<const double> q, const Matrix& rows,
                            std::span<double> out);

/// Two-query variant of squared_distance_block: distance rows of q0 and q1
/// against the same candidate matrix in one pass.  Each candidate row is
/// loaded once and feeds both queries' accumulation chains; each
/// (query, row) accumulation is sequential in c, so out0/out1 are
/// bit-identical to two calls of the single-query kernel.
void squared_distance_block2(std::span<const double> q0,
                             std::span<const double> q1, const Matrix& rows,
                             std::span<double> out0, std::span<double> out1);

/// out[i] = q_sq - 2 * dot(q, rows.row(i)) + row_sq[i] — the cached-norms
/// distance block (|a-b|^2 = |a|^2 + |b|^2 - 2 a.b), the kNN euclidean fast
/// path.  Four candidate rows per iteration; each dot is sequential in c,
/// and the surrounding expression matches the scalar form exactly, so every
/// out[i] is bit-identical to the per-row loop.
void squared_distance_from_norms_block(std::span<const double> q, double q_sq,
                                       const Matrix& rows,
                                       std::span<const double> row_sq,
                                       std::span<double> out);

/// Two-query variant of squared_distance_from_norms_block: computes the
/// distance rows of q0 and q1 against the same candidate matrix in one
/// pass.  Each candidate row is loaded once and fed to both queries' dot
/// chains (half the memory traffic of two single-query passes, eight
/// independent accumulation chains instead of four); each (query, row)
/// dot still runs feature 0, 1, 2, ... sequentially, so out0/out1 are
/// bit-identical to two calls of the single-query kernel.
void squared_distance_from_norms_block2(std::span<const double> q0, double q0_sq,
                                        std::span<const double> q1, double q1_sq,
                                        const Matrix& rows,
                                        std::span<const double> row_sq,
                                        std::span<double> out0,
                                        std::span<double> out1);

}  // namespace mlaas
