#include "linalg/matrix.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mlaas {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

std::vector<double> Matrix::col(std::size_t c) const {
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  assert(values.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Matrix Matrix::select_rows(std::span<const std::size_t> idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    assert(idx[i] < rows_);
    auto src = row(idx[i]);
    auto dst = out.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

Matrix Matrix::select_cols(std::span<const std::size_t> idx) const {
  Matrix out(rows_, idx.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = 0; i < idx.size(); ++i) {
      assert(idx[i] < cols_);
      out(r, i) = (*this)(r, idx[i]);
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* p = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += p[c] * v[c];
    out[r] = acc;
  }
  return out;
}

std::vector<double> Matrix::transpose_multiply(std::span<const double> v) const {
  assert(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* p = data_.data() + r * cols_;
    const double vr = v[r];
    for (std::size_t c = 0; c < cols_; ++c) out[c] += p[c] * vr;
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) out(r, c) += a * other(k, c);
    }
  }
  return out;
}

std::vector<double> solve_spd(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) throw std::invalid_argument("solve_spd: shape mismatch");

  // Average magnitude of the diagonal drives the jitter scale.
  double diag_scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) diag_scale += std::abs(a(i, i));
  diag_scale = diag_scale > 0 ? diag_scale / static_cast<double>(n) : 1.0;

  for (double jitter = 0.0;; jitter = jitter == 0.0 ? 1e-10 * diag_scale : jitter * 100) {
    if (jitter > diag_scale) throw std::runtime_error("solve_spd: matrix not SPD");
    Matrix l(n, n);
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double sum = a(i, j) + (i == j ? jitter : 0.0);
        for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
        if (i == j) {
          if (sum <= 0.0 || !std::isfinite(sum)) {
            ok = false;
            break;
          }
          l(i, i) = std::sqrt(sum);
        } else {
          l(i, j) = sum / l(j, j);
        }
      }
    }
    if (!ok) continue;
    // Forward substitution: L y = b.
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      double sum = b[i];
      for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
      y[i] = sum / l(i, i);
    }
    // Back substitution: L^T x = y.
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
      double sum = y[ii];
      for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
      x[ii] = sum / l(ii, ii);
    }
    return x;
  }
}

}  // namespace mlaas
