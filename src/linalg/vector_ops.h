// Free functions over std::span<const double> used throughout the ML code.
#pragma once

#include <span>
#include <vector>

namespace mlaas {

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
double norm1(std::span<const double> a);
/// a += scale * b
void axpy(std::span<double> a, double scale, std::span<const double> b);
/// a *= scale
void scale_inplace(std::span<double> a, double scale);
/// Squared Euclidean distance.
double squared_distance(std::span<const double> a, std::span<const double> b);
/// Minkowski distance with exponent p (p >= 1).
double minkowski_distance(std::span<const double> a, std::span<const double> b, double p);

/// Index of the maximum element (first on ties). Requires non-empty input.
std::size_t argmax(std::span<const double> v);

/// Numerically stable logistic sigmoid.
double sigmoid(double z);
/// log(1 + exp(z)) without overflow.
double log1p_exp(double z);

std::vector<double> softmax(std::span<const double> v);

}  // namespace mlaas
