// Dense row-major matrix of doubles.
//
// Deliberately small: the ML library needs row access, transpose-multiply and
// a symmetric-solve (for LDA); nothing here aspires to be a BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace mlaas {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Construct from nested initializer list (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  std::vector<double> col(std::size_t c) const;
  void set_col(std::size_t c, std::span<const double> values);

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Select a subset of rows (by index) into a new matrix.
  Matrix select_rows(std::span<const std::size_t> idx) const;
  /// Select a subset of columns (by index) into a new matrix.
  Matrix select_cols(std::span<const std::size_t> idx) const;

  Matrix transposed() const;

  /// this * v  (v.size() == cols()).
  std::vector<double> multiply(std::span<const double> v) const;
  /// this^T * v (v.size() == rows()).
  std::vector<double> transpose_multiply(std::span<const double> v) const;
  /// this * other.
  Matrix multiply(const Matrix& other) const;

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b for symmetric positive-(semi)definite A using Cholesky with
/// diagonal jitter fallback.  Throws std::runtime_error if A is unusable.
std::vector<double> solve_spd(Matrix a, std::vector<double> b);

}  // namespace mlaas
