#include "linalg/vector_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mlaas {

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm1(std::span<const double> a) {
  double acc = 0.0;
  for (double v : a) acc += std::abs(v);
  return acc;
}

void axpy(std::span<double> a, double scale, std::span<const double> b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += scale * b[i];
}

void scale_inplace(std::span<double> a, double scale) {
  for (double& v : a) v *= scale;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double minkowski_distance(std::span<const double> a, std::span<const double> b, double p) {
  assert(a.size() == b.size());
  if (p == 2.0) return std::sqrt(squared_distance(a, b));
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::pow(std::abs(a[i] - b[i]), p);
  return std::pow(acc, 1.0 / p);
}

std::size_t argmax(std::span<const double> v) {
  assert(!v.empty());
  return static_cast<std::size_t>(std::max_element(v.begin(), v.end()) - v.begin());
}

double sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double log1p_exp(double z) {
  if (z > 35.0) return z;
  if (z < -35.0) return 0.0;
  return std::log1p(std::exp(z));
}

std::vector<double> softmax(std::span<const double> v) {
  std::vector<double> out(v.begin(), v.end());
  const double m = *std::max_element(out.begin(), out.end());
  double sum = 0.0;
  for (double& x : out) {
    x = std::exp(x - m);
    sum += x;
  }
  for (double& x : out) x /= sum;
  return out;
}

}  // namespace mlaas
