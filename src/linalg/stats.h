// Descriptive statistics and rank-correlation measures.
//
// These back the filter feature-selection methods (Pearson/Spearman/Kendall/
// chi-squared/Fisher score) and the Friedman ranking used by the evaluation
// harness (§3.2 of the paper).
#pragma once

#include <span>
#include <vector>

namespace mlaas {

double mean(std::span<const double> v);
/// Population variance (divide by n); 0 for n < 1.
double variance(std::span<const double> v);
double stddev(std::span<const double> v);
/// Sample covariance (divide by n).
double covariance(std::span<const double> a, std::span<const double> b);

double min_value(std::span<const double> v);
double max_value(std::span<const double> v);
/// Median (average of middle two for even n). Requires non-empty input.
double median(std::span<const double> v);
/// Linear-interpolated quantile, q in [0,1]. Requires non-empty input.
double quantile(std::span<const double> v, double q);

/// Fractional ranks (1-based, ties get the average rank) — as used for
/// Spearman correlation and Friedman ranking.
std::vector<double> fractional_ranks(std::span<const double> v);

/// Pearson correlation coefficient in [-1, 1]; 0 when either side is constant.
double pearson(std::span<const double> a, std::span<const double> b);
/// Spearman rank correlation.
double spearman(std::span<const double> a, std::span<const double> b);
/// Kendall tau-b rank correlation (O(n^2), fine at feature-scoring sizes).
double kendall(std::span<const double> a, std::span<const double> b);

/// Chi-squared statistic between a non-negative feature and binary labels
/// (sklearn chi2 convention: observed class-sums vs expected under
/// label-independence).
double chi_squared(std::span<const double> feature, std::span<const int> labels);

/// Fisher score: (m1-m0)^2 / (v0+v1) for a binary-labeled feature.
double fisher_score(std::span<const double> feature, std::span<const int> labels);

/// Mutual information between a continuous feature (equal-frequency binned)
/// and binary labels, in nats.
double mutual_information(std::span<const double> feature, std::span<const int> labels,
                          int bins = 8);

/// ANOVA F-statistic for a feature split by binary labels (sklearn
/// f_classif).
double anova_f(std::span<const double> feature, std::span<const int> labels);

}  // namespace mlaas
