#include "linalg/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mlaas {

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.size() < 1) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double covariance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  const double ma = mean(a), mb = mean(b);
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += (a[i] - ma) * (b[i] - mb);
  return acc / static_cast<double>(a.size());
}

double min_value(std::span<const double> v) {
  if (v.empty()) throw std::invalid_argument("min_value: empty");
  return *std::min_element(v.begin(), v.end());
}

double max_value(std::span<const double> v) {
  if (v.empty()) throw std::invalid_argument("max_value: empty");
  return *std::max_element(v.begin(), v.end());
}

double median(std::span<const double> v) { return quantile(v, 0.5); }

double quantile(std::span<const double> v, double q) {
  if (v.empty()) throw std::invalid_argument("quantile: empty");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of [0,1]");
  std::vector<double> s(v.begin(), v.end());
  // NaN breaks strict weak ordering: selection would be UB and the result
  // would depend on element order.  Reject it deterministically instead.
  for (const double x : s) {
    if (std::isnan(x)) throw std::invalid_argument("quantile: NaN input");
  }
  const double pos = q * static_cast<double>(s.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  // Selection instead of a full sort: nth_element puts the lo-th order
  // statistic in place and partitions, so the hi-th order statistic is the
  // minimum of the upper partition.  Same values as the sorted path, hence
  // bit-identical interpolation.
  std::nth_element(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(lo), s.end());
  const double lo_val = s[lo];
  const double hi_val =
      hi == lo ? lo_val
               : *std::min_element(s.begin() + static_cast<std::ptrdiff_t>(lo) + 1, s.end());
  return lo_val * (1.0 - frac) + hi_val * frac;
}

std::vector<double> fractional_ranks(std::span<const double> v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    // Average 1-based rank over the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  const double sa = stddev(a), sb = stddev(b);
  if (sa == 0.0 || sb == 0.0) return 0.0;
  return covariance(a, b) / (sa * sb);
}

double spearman(std::span<const double> a, std::span<const double> b) {
  const auto ra = fractional_ranks(a);
  const auto rb = fractional_ranks(b);
  return pearson(ra, rb);
}

double kendall(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0, ties_a = 0, ties_b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) continue;
      if (da == 0.0) {
        ++ties_a;
      } else if (db == 0.0) {
        ++ties_b;
      } else if ((da > 0) == (db > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(concordant + discordant);
  const double denom =
      std::sqrt((n0 + static_cast<double>(ties_a)) * (n0 + static_cast<double>(ties_b)));
  if (denom == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

double chi_squared(std::span<const double> feature, std::span<const int> labels) {
  assert(feature.size() == labels.size());
  const std::size_t n = feature.size();
  if (n == 0) return 0.0;
  // sklearn chi2: treat the (non-negative) feature values as frequencies.
  double total = 0.0, sum_pos = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = std::max(0.0, feature[i]);
    total += f;
    if (labels[i] == 1) {
      sum_pos += f;
      ++n_pos;
    }
  }
  if (total == 0.0 || n_pos == 0 || n_pos == n) return 0.0;
  const double p1 = static_cast<double>(n_pos) / static_cast<double>(n);
  const double expected_pos = total * p1;
  const double expected_neg = total * (1.0 - p1);
  const double sum_neg = total - sum_pos;
  double stat = 0.0;
  if (expected_pos > 0) stat += (sum_pos - expected_pos) * (sum_pos - expected_pos) / expected_pos;
  if (expected_neg > 0) stat += (sum_neg - expected_neg) * (sum_neg - expected_neg) / expected_neg;
  return stat;
}

double fisher_score(std::span<const double> feature, std::span<const int> labels) {
  assert(feature.size() == labels.size());
  std::vector<double> c0, c1;
  for (std::size_t i = 0; i < feature.size(); ++i) {
    (labels[i] == 1 ? c1 : c0).push_back(feature[i]);
  }
  if (c0.empty() || c1.empty()) return 0.0;
  const double m0 = mean(c0), m1 = mean(c1);
  const double v0 = variance(c0), v1 = variance(c1);
  const double denom = v0 + v1;
  if (denom == 0.0) return m0 == m1 ? 0.0 : 1e12;
  return (m1 - m0) * (m1 - m0) / denom;
}

double mutual_information(std::span<const double> feature, std::span<const int> labels,
                          int bins) {
  assert(feature.size() == labels.size());
  const std::size_t n = feature.size();
  if (n == 0 || bins < 1) return 0.0;
  // Equal-frequency binning via rank quantiles.
  const auto ranks = fractional_ranks(feature);
  std::vector<int> bin(n);
  for (std::size_t i = 0; i < n; ++i) {
    int b = static_cast<int>((ranks[i] - 1.0) / static_cast<double>(n) * bins);
    bin[i] = std::clamp(b, 0, bins - 1);
  }
  std::vector<double> joint(static_cast<std::size_t>(bins) * 2, 0.0);
  std::vector<double> pb(static_cast<std::size_t>(bins), 0.0);
  double py[2] = {0.0, 0.0};
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = labels[i] == 1 ? 1 : 0;
    joint[static_cast<std::size_t>(bin[i]) * 2 + static_cast<std::size_t>(y)] += inv_n;
    pb[static_cast<std::size_t>(bin[i])] += inv_n;
    py[y] += inv_n;
  }
  double mi = 0.0;
  for (int b = 0; b < bins; ++b) {
    for (int y = 0; y < 2; ++y) {
      const double pxy = joint[static_cast<std::size_t>(b) * 2 + static_cast<std::size_t>(y)];
      if (pxy > 0.0 && pb[static_cast<std::size_t>(b)] > 0.0 && py[y] > 0.0) {
        mi += pxy * std::log(pxy / (pb[static_cast<std::size_t>(b)] * py[y]));
      }
    }
  }
  return std::max(0.0, mi);
}

double anova_f(std::span<const double> feature, std::span<const int> labels) {
  assert(feature.size() == labels.size());
  std::vector<double> c0, c1;
  for (std::size_t i = 0; i < feature.size(); ++i) {
    (labels[i] == 1 ? c1 : c0).push_back(feature[i]);
  }
  const double n0 = static_cast<double>(c0.size());
  const double n1 = static_cast<double>(c1.size());
  if (n0 < 1 || n1 < 1 || n0 + n1 < 3) return 0.0;
  const double grand = mean(feature);
  const double m0 = mean(c0), m1 = mean(c1);
  const double ss_between = n0 * (m0 - grand) * (m0 - grand) + n1 * (m1 - grand) * (m1 - grand);
  double ss_within = 0.0;
  for (double x : c0) ss_within += (x - m0) * (x - m0);
  for (double x : c1) ss_within += (x - m1) * (x - m1);
  const double df_between = 1.0;
  const double df_within = n0 + n1 - 2.0;
  if (ss_within == 0.0) return ss_between == 0.0 ? 0.0 : 1e12;
  return (ss_between / df_between) / (ss_within / df_within);
}

}  // namespace mlaas
