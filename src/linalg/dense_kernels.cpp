#include "linalg/dense_kernels.h"

#include <cassert>

namespace mlaas {

void matvec_into(const Matrix& x, std::span<const double> w, std::span<double> out) {
  assert(w.size() == x.cols());
  assert(out.size() >= x.rows());
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const double* data = x.data().data();
  const double* wp = w.data();
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const double* p0 = data + r * d;
    const double* p1 = p0 + d;
    const double* p2 = p1 + d;
    const double* p3 = p2 + d;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double wc = wp[c];
      s0 += p0[c] * wc;
      s1 += p1[c] * wc;
      s2 += p2[c] * wc;
      s3 += p3[c] * wc;
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < n; ++r) {
    const double* p = data + r * d;
    double s = 0.0;
    for (std::size_t c = 0; c < d; ++c) s += p[c] * wp[c];
    out[r] = s;
  }
}

void dense_layer_into(const Matrix& w, std::span<const double> v,
                      std::span<const double> bias, std::span<double> out) {
  assert(v.size() == w.cols());
  assert(bias.size() == w.rows() && out.size() >= w.rows());
  // Same shape as matvec_into: the layer's weight rows are the "matrix
  // rows", the incoming activation is the shared vector.
  matvec_into(w, v, out);
  for (std::size_t i = 0; i < w.rows(); ++i) out[i] += bias[i];
}

void squared_distance_block(std::span<const double> q, const Matrix& rows,
                            std::span<double> out) {
  assert(q.size() == rows.cols());
  assert(out.size() >= rows.rows());
  const std::size_t n = rows.rows();
  const std::size_t d = rows.cols();
  const double* data = rows.data().data();
  const double* qp = q.data();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* p0 = data + i * d;
    const double* p1 = p0 + d;
    const double* p2 = p1 + d;
    const double* p3 = p2 + d;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double qc = qp[c];
      const double d0 = qc - p0[c];
      const double d1 = qc - p1[c];
      const double d2 = qc - p2[c];
      const double d3 = qc - p3[c];
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
    }
    out[i] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < n; ++i) {
    const double* p = data + i * d;
    double s = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = qp[c] - p[c];
      s += diff * diff;
    }
    out[i] = s;
  }
}

void squared_distance_block2(std::span<const double> q0,
                             std::span<const double> q1, const Matrix& rows,
                             std::span<double> out0, std::span<double> out1) {
  assert(q0.size() == rows.cols() && q1.size() == rows.cols());
  assert(out0.size() >= rows.rows() && out1.size() >= rows.rows());
  const std::size_t n = rows.rows();
  const std::size_t d = rows.cols();
  const double* data = rows.data().data();
  const double* qa = q0.data();
  const double* qb = q1.data();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double* p0 = data + i * d;
    const double* p1 = p0 + d;
    double a0 = 0.0, a1 = 0.0, b0 = 0.0, b1 = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double x0 = p0[c];
      const double x1 = p1[c];
      const double da0 = qa[c] - x0;
      const double da1 = qa[c] - x1;
      const double db0 = qb[c] - x0;
      const double db1 = qb[c] - x1;
      a0 += da0 * da0;
      a1 += da1 * da1;
      b0 += db0 * db0;
      b1 += db1 * db1;
    }
    out0[i] = a0;
    out0[i + 1] = a1;
    out1[i] = b0;
    out1[i + 1] = b1;
  }
  for (; i < n; ++i) {
    const double* p = data + i * d;
    double sa = 0.0, sb = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double da = qa[c] - p[c];
      const double db = qb[c] - p[c];
      sa += da * da;
      sb += db * db;
    }
    out0[i] = sa;
    out1[i] = sb;
  }
}

void squared_distance_from_norms_block(std::span<const double> q, double q_sq,
                                       const Matrix& rows,
                                       std::span<const double> row_sq,
                                       std::span<double> out) {
  assert(q.size() == rows.cols());
  assert(row_sq.size() == rows.rows() && out.size() >= rows.rows());
  const std::size_t n = rows.rows();
  const std::size_t d = rows.cols();
  const double* data = rows.data().data();
  const double* qp = q.data();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* p0 = data + i * d;
    const double* p1 = p0 + d;
    const double* p2 = p1 + d;
    const double* p3 = p2 + d;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double qc = qp[c];
      s0 += qc * p0[c];
      s1 += qc * p1[c];
      s2 += qc * p2[c];
      s3 += qc * p3[c];
    }
    out[i] = q_sq - 2.0 * s0 + row_sq[i];
    out[i + 1] = q_sq - 2.0 * s1 + row_sq[i + 1];
    out[i + 2] = q_sq - 2.0 * s2 + row_sq[i + 2];
    out[i + 3] = q_sq - 2.0 * s3 + row_sq[i + 3];
  }
  for (; i < n; ++i) {
    const double* p = data + i * d;
    double s = 0.0;
    for (std::size_t c = 0; c < d; ++c) s += qp[c] * p[c];
    out[i] = q_sq - 2.0 * s + row_sq[i];
  }
}

void squared_distance_from_norms_block2(std::span<const double> q0, double q0_sq,
                                        std::span<const double> q1, double q1_sq,
                                        const Matrix& rows,
                                        std::span<const double> row_sq,
                                        std::span<double> out0,
                                        std::span<double> out1) {
  assert(q0.size() == rows.cols() && q1.size() == rows.cols());
  assert(row_sq.size() == rows.rows());
  assert(out0.size() >= rows.rows() && out1.size() >= rows.rows());
  const std::size_t n = rows.rows();
  const std::size_t d = rows.cols();
  const double* data = rows.data().data();
  const double* qa = q0.data();
  const double* qb = q1.data();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* p0 = data + i * d;
    const double* p1 = p0 + d;
    const double* p2 = p1 + d;
    const double* p3 = p2 + d;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    double b0 = 0.0, b1 = 0.0, b2 = 0.0, b3 = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double x0 = p0[c];
      const double x1 = p1[c];
      const double x2 = p2[c];
      const double x3 = p3[c];
      const double ca = qa[c];
      const double cb = qb[c];
      a0 += ca * x0;
      a1 += ca * x1;
      a2 += ca * x2;
      a3 += ca * x3;
      b0 += cb * x0;
      b1 += cb * x1;
      b2 += cb * x2;
      b3 += cb * x3;
    }
    out0[i] = q0_sq - 2.0 * a0 + row_sq[i];
    out0[i + 1] = q0_sq - 2.0 * a1 + row_sq[i + 1];
    out0[i + 2] = q0_sq - 2.0 * a2 + row_sq[i + 2];
    out0[i + 3] = q0_sq - 2.0 * a3 + row_sq[i + 3];
    out1[i] = q1_sq - 2.0 * b0 + row_sq[i];
    out1[i + 1] = q1_sq - 2.0 * b1 + row_sq[i + 1];
    out1[i + 2] = q1_sq - 2.0 * b2 + row_sq[i + 2];
    out1[i + 3] = q1_sq - 2.0 * b3 + row_sq[i + 3];
  }
  for (; i < n; ++i) {
    const double* p = data + i * d;
    double sa = 0.0, sb = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      sa += qa[c] * p[c];
      sb += qb[c] * p[c];
    }
    out0[i] = q0_sq - 2.0 * sa + row_sq[i];
    out1[i] = q1_sq - 2.0 * sb + row_sq[i];
  }
}

}  // namespace mlaas
