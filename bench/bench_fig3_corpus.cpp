// Figure 3: corpus characteristics.
//  (a) application-domain breakdown, (b) CDF of sample counts, (c) CDF of
//  feature counts.  Nominal (pre-cap) sizes are reported, matching the
//  paper's corpus statistics; the actual generated sizes are also shown.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Figure 3: dataset corpus characteristics", opt);
  Study study(opt);
  const auto& corpus = study.corpus();

  // (a) Domain breakdown.
  std::map<std::string, std::size_t> domains;
  for (const auto& ds : corpus) domains[to_string(ds.meta().domain)] += 1;
  TextTable t({"Application domain", "# datasets"});
  for (const auto& [domain, count] : domains) t.add_row({domain, std::to_string(count)});
  t.add_row({"Total", std::to_string(corpus.size())});
  std::cout << "Figure 3(a): breakdown of application domains\n" << t.str() << "\n";

  // (b) CDF of sample counts.
  std::vector<double> nominal_samples, actual_samples;
  std::vector<double> nominal_features, actual_features;
  for (const auto& ds : corpus) {
    nominal_samples.push_back(static_cast<double>(ds.meta().nominal_samples));
    actual_samples.push_back(static_cast<double>(ds.n_samples()));
    nominal_features.push_back(static_cast<double>(ds.meta().nominal_features));
    actual_features.push_back(static_cast<double>(ds.n_features()));
  }
  std::cout << "Figure 3(b): CDF of number of samples (nominal, paper-scale)\n"
            << render_cdf(nominal_samples, 15, "samples")
            << "\n(actual generated, after runtime cap)\n"
            << render_cdf(actual_samples, 15, "samples") << "\n";

  // (c) CDF of feature counts.
  std::cout << "Figure 3(c): CDF of number of features (nominal, paper-scale)\n"
            << render_cdf(nominal_features, 15, "features")
            << "\n(actual generated, after runtime cap)\n"
            << render_cdf(actual_features, 15, "features") << "\n";
  return 0;
}
