// Shared setup for the bench binaries: flag parsing and Study construction.
//
// Every bench accepts --seed N --scale X --threads N --quick and shares the
// on-disk measurement cache, so the expensive measurement pass runs once for
// the whole bench suite.
#pragma once

#include <iostream>

#include "core/study.h"
#include "util/cli.h"

namespace mlaas {

inline StudyOptions study_options_from_cli(int argc, const char* const* argv) {
  const BenchOptions bench = parse_bench_options(argc, argv);
  StudyOptions opt;
  opt.seed = bench.seed;
  opt.scale = bench.scale;
  opt.quick = bench.quick;
  opt.threads = bench.threads;
  return opt;
}

inline void print_bench_header(const std::string& title, const StudyOptions& opt) {
  std::cout << "==== " << title << " ====\n"
            << "seed=" << opt.seed << " scale=" << opt.scale
            << (opt.quick ? " (quick mode)" : "") << "\n\n";
}

}  // namespace mlaas
