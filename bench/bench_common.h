// Shared setup for the bench binaries: flag parsing and Study construction.
//
// Every bench accepts --seed N --scale X --threads N --quick plus the
// campaign-envelope knobs --fault-rate F --quota-profile P --retry-budget K,
// and shares the on-disk measurement cache, so the expensive measurement
// pass runs once for the whole bench suite.
#pragma once

#include <iostream>

#include "core/study.h"
#include "util/cli.h"

namespace mlaas {

inline StudyOptions study_options_from_cli(int argc, const char* const* argv) {
  const BenchOptions bench = parse_bench_options(argc, argv);
  StudyOptions opt;
  opt.seed = bench.seed;
  opt.scale = bench.scale;
  opt.quick = bench.quick;
  opt.threads = bench.threads;
  opt.schedule = bench.schedule;
  opt.fault_rate = bench.fault_rate;
  opt.quota_profile = bench.quota_profile;
  opt.retry_budget = bench.retry_budget;
  opt.chaos_profile = bench.chaos_profile;
  opt.breakers = bench.breakers;
  opt.breaker_threshold = bench.breaker_threshold;
  opt.breaker_cooldown = bench.breaker_cooldown;
  opt.breaker_probes = bench.breaker_probes;
  opt.jitter = bench.jitter;
  opt.resume = bench.resume;
  return opt;
}

inline void print_bench_header(const std::string& title, const StudyOptions& opt) {
  std::cout << "==== " << title << " ====\n"
            << "seed=" << opt.seed << " scale=" << opt.scale
            << (opt.quick ? " (quick mode)" : "");
  if (opt.fault_rate > 0.0 || opt.quota_profile != "default") {
    std::cout << " fault-rate=" << opt.fault_rate << " quota-profile=" << opt.quota_profile
              << " retry-budget=" << opt.retry_budget;
  }
  if (opt.chaos_profile != "none") std::cout << " chaos-profile=" << opt.chaos_profile;
  if (opt.schedule != "dynamic") std::cout << " schedule=" << opt.schedule;
  if (opt.breakers) {
    std::cout << " breakers=on(" << opt.breaker_threshold << "/" << opt.breaker_cooldown
              << "s/" << opt.breaker_probes << ")";
  }
  std::cout << "\n\n";
}

}  // namespace mlaas
