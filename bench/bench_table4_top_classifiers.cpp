// Table 4: top-4 classifiers per platform, (a) with baseline/default
// parameters and (b) with optimized parameters.  The percentage is the share
// of datasets on which the classifier achieves the platform's top F-score.
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Table 4: top classifiers per platform", opt);
  Study study(opt);

  const std::vector<std::string> platforms{"BigML", "PredictionIO", "Microsoft", "Local"};
  for (const bool optimized : {false, true}) {
    std::vector<std::vector<std::pair<std::string, double>>> tops;
    for (const auto& p : platforms) tops.push_back(study.table4(p, optimized));
    std::cout << render_table4(optimized
                                   ? "Table 4(b): ranking with optimized parameters"
                                   : "Table 4(a): ranking with baseline parameters",
                               platforms, tops)
              << "\n";
  }
  std::cout << "(paper shape: no single classifier dominates; tree ensembles and LR both"
               " appear at the top)\n";
  return 0;
}
