// Figures 9, 10 and 13: the CIRCLE/LINEAR probe datasets and the decision
// boundaries the black-box platforms (Google, ABM) and Amazon produce on
// them.  Boundaries are rendered as ASCII maps ('#' = class 1) with a
// linear-fit score quantifying the shape.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Figures 9/10/13: probe datasets and decision boundaries", opt);
  Study study(opt);

  const Dataset circle = study.circle_probe();
  const Dataset linear = study.linear_probe();

  // Figure 9: dataset visualizations.
  for (const Dataset* probe : {&circle, &linear}) {
    AsciiCanvas canvas(56, 24, -2.0, 2.0, -2.0, 2.0);
    for (std::size_t i = 0; i < probe->n_samples(); ++i) {
      canvas.plot(probe->x()(i, 0), probe->x()(i, 1), probe->y()[i] == 1 ? '#' : '.');
    }
    std::cout << "Figure 9: " << probe->meta().name << " dataset ('#' = class 1)\n"
              << canvas.str() << "\n";
  }

  // Figures 10 & 13: per-platform boundaries.
  struct Probe {
    const char* figure;
    const char* platform;
    const Dataset* dataset;
    bool expect_linear;
  };
  const Probe probes[] = {
      {"Figure 10(a)", "Google", &circle, false}, {"Figure 10(b)", "Google", &linear, true},
      {"Figure 10(c)", "ABM", &circle, false},    {"Figure 10(d)", "ABM", &linear, true},
      {"Figure 13", "Amazon", &circle, false},
  };
  for (const auto& p : probes) {
    const BoundaryMap map = study.boundary(p.platform, *p.dataset);
    std::cout << p.figure << ": " << p.platform << " decision boundary on "
              << p.dataset->meta().name << "\n"
              << render_boundary(map, 48) << "linear-fit accuracy: "
              << fmt(map.linear_fit_accuracy) << " -> "
              << (boundary_is_linear(map) ? "LINEAR" : "NON-LINEAR") << " (paper: "
              << (p.expect_linear ? "linear" : "non-linear") << ")\n\n";
  }
  return 0;
}
