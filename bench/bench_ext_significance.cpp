// Extension: statistical significance of the platform comparison — the
// Demšar methodology the paper's evaluation design builds on (§7 [19, 20]).
// Pairwise Wilcoxon signed-rank tests on per-dataset optimized F-scores,
// plus the Nemenyi critical difference for the Friedman ranking of Table 3.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "eval/significance.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Extension: significance of the platform comparison", opt);
  Study study(opt);
  const auto& table = study.measurements();

  // Per-dataset optimized F per platform.
  const auto platforms = study.platform_order();
  std::map<std::string, std::map<std::string, double>> best;  // platform -> ds -> F
  for (const auto& m : table.rows()) {
    auto& slot = best[m.platform];
    auto [it, inserted] = slot.emplace(m.dataset_id, m.test.f_score);
    if (!inserted) it->second = std::max(it->second, m.test.f_score);
  }
  std::vector<std::vector<double>> scores;
  for (const auto& ds : table.dataset_ids()) {
    std::vector<double> row;
    bool complete = true;
    for (const auto& p : platforms) {
      auto it = best[p].find(ds);
      complete = complete && it != best[p].end();
      if (complete) row.push_back(it->second);
    }
    if (complete) scores.push_back(std::move(row));
  }

  const double cd = nemenyi_critical_difference(platforms.size(), scores.size());
  std::cout << "Nemenyi critical difference (k=" << platforms.size()
            << ", n=" << scores.size() << "): " << fmt(cd, 3) << "\n\n";

  TextTable t({"Pair", "Wilcoxon p", "Significant (p<0.05)", "|rank diff|", "Nemenyi"});
  for (const auto& cmp : pairwise_comparisons(platforms, scores)) {
    t.add_row({cmp.a + " vs " + cmp.b, fmt(cmp.wilcoxon.p_value, 4),
               cmp.wilcoxon.significant_at_05() ? "yes" : "no",
               fmt(cmp.rank_difference, 2), cmp.nemenyi_significant ? "yes" : "no"});
  }
  std::cout << t.str()
            << "\nReading: the paper's headline gaps (tuned Microsoft/Local vs the black\n"
               "boxes) should be significant; near-ties (Microsoft vs Local) should "
               "not.\n";
  return 0;
}
