// Table 6 + Figure 14 + §6.3: the naïve LR-vs-DT switching strategy against
// Google and ABM — win counts, choice-agreement breakdown, the CDF of
// F-score gaps where the naïve strategy wins, and the datasets where
// switching families is likely the only fix.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Table 6 / Figure 14: naive strategy vs black-box platforms", opt);
  Study study(opt);

  for (const auto& platform : {"Google", "ABM"}) {
    const NaiveComparison cmp = study.naive_vs(platform);
    std::cout << "=== Naive (best of default LR / default DT) vs " << platform << " ===\n";
    std::cout << "Datasets compared (family-predictable): " << cmp.n_datasets << "\n";
    std::cout << "Naive wins: " << cmp.naive_wins << " (paper: 43/64 vs Google, 48/64 vs "
                 "ABM)\n";

    TextTable t({"", std::string(platform) + ": Linear",
                 std::string(platform) + ": Non-linear"});
    const std::size_t wins = std::max<std::size_t>(1, cmp.naive_wins);
    auto cell = [&](std::size_t count) {
      return std::to_string(count) + " (" +
             fmt_pct(static_cast<double>(count) / static_cast<double>(wins)) + ")";
    };
    t.add_row({"Naive: Linear", cell(cmp.wins_breakdown[0][0]), cell(cmp.wins_breakdown[0][1])});
    t.add_row({"Naive: Non-linear", cell(cmp.wins_breakdown[1][0]),
               cell(cmp.wins_breakdown[1][1])});
    std::cout << "Table 6: breakdown of naive wins by classifier choices\n" << t.str();

    if (!cmp.win_gaps.empty()) {
      std::cout << "Figure 14: CDF of F-score gap where naive wins\n"
                << render_cdf(cmp.win_gaps, 10, "gap");
    }
    std::cout << "Datasets where switching family is likely the best option (§6.3): "
              << cmp.switching_is_best << " (paper: 3 for Google, 4 for ABM)\n\n";
  }
  return 0;
}
