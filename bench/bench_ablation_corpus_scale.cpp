// Ablation (beyond the paper): does the corpus sample-size cap — our main
// runtime-scaling substitution (DESIGN.md) — change the *baseline platform
// ordering*?  Runs the zero-control baseline at three corpus caps.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "data/corpus.h"
#include "eval/aggregate.h"
#include "eval/measurement.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Ablation: corpus sample-cap sensitivity of baseline ordering", opt);

  const std::size_t caps[] = {150, 400, 900};
  TextTable t({"Platform", "cap=150", "cap=400", "cap=900"});
  std::map<std::string, std::vector<std::string>> cells;

  for (const std::size_t cap : caps) {
    CorpusOptions copt;
    copt.seed = opt.seed;
    copt.n_datasets = opt.quick ? 24 : 60;  // slice: baselines only, stays fast
    copt.max_samples = cap;
    copt.max_features = 24;
    const auto corpus = build_corpus(copt);

    const auto platforms = make_all_platforms();
    MeasurementOptions mopt;
    mopt.seed = opt.seed;
    mopt.threads = opt.threads;
    MeasurementTable table;
    for (const auto& ds : corpus) {
      for (const auto& platform : platforms) {
        if (auto m = measure_one(ds, *platform, platform->baseline_config(), mopt)) {
          table.add(std::move(*m));
        }
      }
    }
    for (const auto& s : baseline_summary(table)) {
      cells[s.platform].push_back(fmt(s.avg.f_score));
    }
  }
  for (const auto& name : platform_names()) {
    std::vector<std::string> row{name};
    for (const auto& cell : cells[name]) row.push_back(cell);
    t.add_row(std::move(row));
  }
  std::cout << t.str()
            << "\nIf the relative ordering is stable across caps, the runtime cap "
               "substitution does not distort the paper's baseline comparison.\n";
  return 0;
}
