// Serving-layer benchmark: the batched multi-tenant QueryRouter under
// skewed workloads (ROADMAP "production-scale service" extension).
//
// Scenarios (all deterministic in the simulated clock):
//   open_loop_skewed   6 Zipf-weighted tenants over 4 platforms, Poisson
//                      arrivals at 50 req/s against the default quotas.
//   closed_loop        8 synchronous clients over 2 platforms, unlimited
//                      quota — the batcher's best case.
//   small_cache        model-cache capacity 2 under 6 tenants: constant
//                      eviction + deterministic re-train churn.
//   chaos_soak         seeded "storm" fault schedule with deadline budgets,
//                      breaker-gated failover and last-known-good serving.
//                      The scenario runs twice and aborts unless goodput is
//                      positive and both runs produce byte-identical reports.
//   traced_storm       chaos_soak with end-to-end tracing on: runs twice and
//                      aborts unless the Chrome trace_event JSON of both runs
//                      is byte-identical (the trace determinism gate).  In
//                      --json mode the trace is written next to the results
//                      (BENCH_serving_trace.json) for the CI artifact.
//
// Modes:
//   (default)                human-readable table
//   --json                   regression harness
//     --out FILE             output path (default BENCH_serving.json)
//     --baseline FILE        committed baseline (bench/baselines/...)
//     --check-regression F   exit 1 if any scenario's simulated throughput
//                            drops below baseline_throughput / F.  Simulated
//                            throughput is seeded and deterministic, so the
//                            factor only needs to absorb intentional
//                            behaviour changes, not runner noise.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "platform/serving.h"
#include "util/table.h"
#include "util/trace.h"

namespace {

using namespace mlaas;

struct ScenarioResult {
  std::string name;
  ServingReport report;
  double wall_seconds = 0.0;
  std::shared_ptr<const Trace> trace;  // traced_storm only
};

ScenarioResult run_scenario(const std::string& name) {
  ServingWorkloadOptions options;
  options.seed = 42;
  options.requests = 2000;
  std::vector<std::string> roster;
  std::size_t n_tenants = 6;
  if (name == "open_loop_skewed") {
    roster = {"Local", "Google", "Amazon", "BigML"};
    options.arrival_rate = 50.0;
  } else if (name == "closed_loop") {
    roster = {"Local", "Google"};
    options.closed_loop = true;
    options.clients = 8;
    options.quota_profile = "unlimited";
  } else if (name == "small_cache") {
    roster = {"Local", "Google", "Amazon", "BigML"};
    options.arrival_rate = 50.0;
    options.serving.model_cache_capacity = 2;
  } else if (name == "chaos_soak" || name == "traced_storm") {
    roster = {"Local", "Google", "Amazon", "BigML"};
    options.arrival_rate = 50.0;
    options.serving.fault_rate = 0.1;
    options.serving.chaos_profile = "storm";
    options.serving.deadline_seconds = 30.0;
    options.serving.fallback_platform = "Google";
    options.serving.serve_last_known_good = true;
    options.serving.breaker.enabled = true;
    options.serving.breaker.failure_threshold = 3;
    options.serving.breaker.cooldown_seconds = 120.0;
    options.serving.breaker.max_probes = 4;
    options.serving.trace = name == "traced_storm";
  } else {
    throw std::invalid_argument("unknown scenario " + name);
  }
  const auto tenants = make_serving_tenants(n_tenants, roster, options.seed);
  const ServingWorkloadResult run = run_serving_workload(tenants, options);
  if (name == "chaos_soak" || name == "traced_storm") {
    // Determinism gate: a second pass through the identical seeded storm must
    // reproduce the report byte-for-byte and keep serving useful answers.
    const ServingWorkloadResult rerun = run_serving_workload(tenants, options);
    std::ostringstream first, second;
    run.report.write_tsv(first);
    rerun.report.write_tsv(second);
    if (first.str() != second.str()) {
      std::cerr << name << ": rerun report diverged from first run\n";
      std::exit(1);
    }
    if (!(run.report.totals.goodput() > 0.0)) {
      std::cerr << name << ": goodput collapsed to zero under the storm\n";
      std::exit(1);
    }
    if (name == "traced_storm") {
      // The trace itself must be as deterministic as the report it annotates.
      std::ostringstream t1, t2;
      run.trace->write_chrome_json(t1);
      rerun.trace->write_chrome_json(t2);
      if (t1.str() != t2.str()) {
        std::cerr << name << ": rerun trace diverged from first run\n";
        std::exit(1);
      }
    }
  }
  return {name, run.report, run.wall_seconds, run.trace};
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = {"open_loop_skewed", "closed_loop",
                                                 "small_cache", "chaos_soak",
                                                 "traced_storm"};
  return names;
}

/// Minimal field scrape, mirroring bench_micro_classifiers: find the named
/// scenario in the baseline JSON, return its throughput (0 when absent).
double baseline_throughput(const std::string& json, const std::string& name) {
  const std::string anchor = "\"name\": \"" + name + "\"";
  std::size_t at = json.find(anchor);
  if (at == std::string::npos) return 0.0;
  const std::string key = "\"throughput_rows_per_sec\": ";
  at = json.find(key, at);
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + key.size(), nullptr);
}

int run_json_mode(const std::vector<std::string>& args) {
  std::string out_path = "BENCH_serving.json";
  std::string baseline_path;
  double check_factor = 0.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) out_path = args[++i];
    else if (args[i] == "--baseline" && i + 1 < args.size()) baseline_path = args[++i];
    else if (args[i] == "--check-regression" && i + 1 < args.size())
      check_factor = std::strtod(args[++i].c_str(), nullptr);
  }

  std::vector<ScenarioResult> results;
  for (const auto& name : scenario_names()) results.push_back(run_scenario(name));

  std::ostringstream json;
  json.precision(6);
  json << "{\n  \"bench\": \"serving\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ServingStats& t = results[i].report.totals;
    json << "    {\"name\": \"" << results[i].name
         << "\", \"throughput_rows_per_sec\": " << t.throughput_rows_per_sec()
         << ", \"p50_ms\": " << t.latency.quantile(0.50) * 1e3
         << ", \"p95_ms\": " << t.latency.quantile(0.95) * 1e3
         << ", \"p99_ms\": " << t.latency.quantile(0.99) * 1e3
         << ", \"requests\": " << t.requests << ", \"ok\": " << t.ok
         << ", \"rows\": " << t.rows
         << ", \"batch_occupancy\": " << t.batch_occupancy(results[i].report.max_batch_rows)
         << ", \"cache_evictions\": " << t.cache_evictions
         << ", \"simulated_seconds\": " << t.simulated_seconds
         << ", \"wall_seconds\": " << results[i].wall_seconds << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.close();
  std::cout << "wrote " << out_path << "\n" << json.str();

  // Sample Chrome trace from the traced scenario, uploaded as a CI artifact
  // beside the throughput JSON.
  for (const auto& r : results) {
    if (r.trace != nullptr) {
      const std::string trace_path = "BENCH_serving_trace.json";
      r.trace->save_json(trace_path);
      std::cout << "wrote " << trace_path << " (" << r.trace->event_count()
                << " events on " << r.trace->track_count() << " tracks)\n";
    }
  }

  if (!baseline_path.empty() && check_factor > 0.0) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "baseline missing: " << baseline_path << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    bool failed = false;
    for (const auto& r : results) {
      const double expected = baseline_throughput(baseline, r.name);
      if (expected <= 0.0) continue;
      const double floor = expected / check_factor;
      const double actual = r.report.totals.throughput_rows_per_sec();
      if (actual < floor) {
        std::cerr << "REGRESSION " << r.name << ": " << actual
                  << " rows/s below floor " << floor << " rows/s (baseline "
                  << expected << " / " << check_factor << ")\n";
        failed = true;
      }
    }
    if (failed) return 1;
    std::cout << "regression check passed (factor " << check_factor << ")\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      std::vector<std::string> args(argv + 1, argv + argc);
      return run_json_mode(args);
    }
  }

  TextTable t({"Scenario", "Rows/s (sim)", "p50 (ms)", "p95 (ms)", "p99 (ms)",
               "Occupancy", "Evictions", "Wall (s)"});
  for (const auto& name : scenario_names()) {
    const ScenarioResult r = run_scenario(name);
    const ServingStats& totals = r.report.totals;
    t.add_row({name, fmt(totals.throughput_rows_per_sec(), 1),
               fmt(totals.latency.quantile(0.50) * 1e3, 2),
               fmt(totals.latency.quantile(0.95) * 1e3, 2),
               fmt(totals.latency.quantile(0.99) * 1e3, 2),
               fmt(totals.batch_occupancy(r.report.max_batch_rows), 2),
               std::to_string(totals.cache_evictions), fmt(r.wall_seconds, 3)});
  }
  std::cout << t.str();
  return 0;
}
