// Figure 7: share of each platform's performance variation attributable to
// tuning a single control dimension (§5.2); CLF dominates in the paper.
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Figure 7: variation from tuning individual controls", opt);
  Study study(opt);
  const auto variations = study.variation_fig7();
  std::cout << render_fig7(variations) << "\n";

  double clf = 0, para = 0;
  int n_clf = 0, n_para = 0;
  for (const auto& v : variations) {
    if (!v.supported) continue;
    if (v.dimension == ControlDimension::kClf) {
      clf += v.normalized_range;
      ++n_clf;
    }
    if (v.dimension == ControlDimension::kPara) {
      para += v.normalized_range;
      ++n_para;
    }
  }
  std::cout << "Shape check (paper: CLF captures most variation, >80% for "
               "Microsoft/PredictionIO): avg normalized CLF="
            << fmt(n_clf ? clf / n_clf : 0.0)
            << " vs PARA=" << fmt(n_para ? para / n_para : 0.0) << "\n";
  return 0;
}
