// Figure 5: relative F-score improvement over the baseline when tuning ONE
// control dimension (FEAT / CLF / PARA) with the others held at baseline.
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Figure 5: improvement from tuning individual controls", opt);
  Study study(opt);
  const auto improvements = study.control_improvements_fig5();
  std::cout << render_fig5(improvements) << "\n";

  // §4.2 headline numbers: average improvement per dimension.
  double sums[3] = {0, 0, 0};
  int counts[3] = {0, 0, 0};
  for (const auto& ci : improvements) {
    if (!ci.supported) continue;
    const int d = static_cast<int>(ci.dimension);
    sums[d] += ci.relative_improvement;
    counts[d] += 1;
  }
  std::cout << "Average improvement across platforms (paper: CLF 14.6% > FEAT 6.1% > "
               "PARA 3.4%):\n";
  for (const ControlDimension dim :
       {ControlDimension::kClf, ControlDimension::kFeat, ControlDimension::kPara}) {
    const int d = static_cast<int>(dim);
    std::cout << "  " << to_string(dim) << ": "
              << fmt_pct(counts[d] > 0 ? sums[d] / counts[d] : 0.0) << "\n";
  }
  return 0;
}
