// §6.2 results: inferred classifier-family choices of the black-box
// platforms (Google, ABM) and of Amazon, on the family-predictable datasets.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Section 6.2: inferred black-box classifier choices", opt);
  Study study(opt);

  std::map<std::string, std::vector<BlackBoxChoice>> choices;
  for (const auto& platform : {"Google", "ABM", "Amazon"}) {
    choices[platform] = study.blackbox_choices(platform);
  }

  TextTable t({"Platform", "Datasets", "Linear", "Non-linear", "% linear"});
  for (const auto& [platform, list] : choices) {
    std::size_t linear = 0;
    for (const auto& c : list) linear += c.family == ClassifierFamily::kLinear ? 1 : 0;
    const std::size_t nonlinear = list.size() - linear;
    t.add_row({platform, std::to_string(list.size()), std::to_string(linear),
               std::to_string(nonlinear),
               list.empty() ? "-" : fmt_pct(static_cast<double>(linear) /
                                            static_cast<double>(list.size()))});
  }
  std::cout << t.str()
            << "(paper: Google 60.9% linear, ABM 68.8% linear on 64 datasets)\n\n";

  // Google vs ABM agreement.
  std::map<std::string, ClassifierFamily> google_by_id;
  for (const auto& c : choices["Google"]) google_by_id[c.dataset_id] = c.family;
  std::size_t agree = 0, total = 0;
  for (const auto& c : choices["ABM"]) {
    auto it = google_by_id.find(c.dataset_id);
    if (it == google_by_id.end()) continue;
    ++total;
    agree += it->second == c.family ? 1 : 0;
  }
  if (total > 0) {
    std::cout << "Google/ABM agreement: " << agree << "/" << total << " ("
              << fmt_pct(static_cast<double>(agree) / static_cast<double>(total))
              << "; paper: 76.6%)\n";
  }

  // Amazon: share of datasets with majority non-linear configurations.
  std::size_t amazon_nonlinear = 0;
  for (const auto& c : choices["Amazon"]) {
    amazon_nonlinear += c.family == ClassifierFamily::kNonLinear ? 1 : 0;
  }
  std::cout << "Amazon datasets predicted majority non-linear: " << amazon_nonlinear << "/"
            << choices["Amazon"].size()
            << " (paper: 10/64 despite the documented logistic regression)\n";
  return 0;
}
