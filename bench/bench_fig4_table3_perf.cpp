// Figure 4 + Table 3: baseline vs optimized performance of every platform,
// with Friedman rankings over all four metrics.
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Figure 4 / Table 3: baseline vs optimized performance", opt);
  Study study(opt);

  const auto baseline = study.baseline();
  const auto optimized = study.optimized();

  std::cout << render_fig4(baseline, optimized, study.platform_order()) << "\n";
  std::cout << render_platform_summaries("Table 3(a): baseline performance", baseline) << "\n";
  std::cout << render_platform_summaries("Table 3(b): optimized performance", optimized)
            << "\n";

  // Paper-shape checks reported inline (EXPERIMENTS.md records them).
  auto f_of = [](const std::vector<PlatformSummary>& summaries, const std::string& p) {
    for (const auto& s : summaries) {
      if (s.platform == p) return s.avg.f_score;
    }
    return 0.0;
  };
  std::cout << "Shape checks (paper expectation):\n"
            << "  optimized(Local) > optimized(Google): "
            << (f_of(optimized, "Local") > f_of(optimized, "Google") ? "yes" : "NO") << "\n"
            << "  optimized(Microsoft) ~ optimized(Local) (gap): "
            << fmt(f_of(optimized, "Local") - f_of(optimized, "Microsoft")) << "\n"
            << "  baseline(black boxes) competitive (Google - Microsoft): "
            << fmt(f_of(baseline, "Google") - f_of(baseline, "Microsoft")) << "\n";
  return 0;
}
