// Perf-regression harness for the model-selection engine: times grid_search
// over the default tree-family grid with cross-config state reuse (shared
// FoldPlan + TrainContext) against the pre-engine per-config cost model
// (reuse off: every config re-partitions folds, re-copies subsets and
// re-presorts), and the same search at 4 worker threads against 1.
//
// Both comparisons are exact-equivalence: the harness first verifies the
// winner and score are identical across every mode, then times them.
//
// Flags (same shape as bench_micro_classifiers --json):
//   --out FILE               output path (default BENCH_model_selection.json)
//   --baseline FILE          committed baseline with expected speedups
//   --check-regression F     exit 1 if any speedup drops below
//                            baseline_speedup / F
//
// Note: the parallel row's measured scaling is bounded by the host's core
// count (reported as host_threads in the JSON); the committed baseline
// encodes what the baseline host could show.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "ml/model_selection/grid_search.h"

namespace {

using namespace mlaas;

/// The tuning workload: a non-linear problem big enough that fold
/// materialization and per-fit presorts are real costs.
Dataset workload() {
  MakeClassificationOptions opt;
  opt.n_samples = 3000;
  opt.n_features = 24;
  opt.n_informative = 10;
  opt.n_redundant = 6;
  opt.n_clusters_per_class = 2;
  opt.class_sep = 1.0;
  return make_classification(opt, 42);
}

/// Platform-style decision-tree grid: depth under the paper's sweep rule plus
/// the local-sklearn feature-sampling axis (max_features is what that
/// platform's DT surface sweeps).  3 depths x 3 feature policies = 9 configs,
/// 5-fold CV each.
ClassifierGridSpec tree_grid() {
  ClassifierGridSpec spec;
  spec.classifier = "decision_tree";
  spec.params = {ParamSpec::integer("max_depth", 4, 1, 8),
                 ParamSpec::categorical("max_features", {"all", "sqrt", "log2"})};
  return spec;
}

GridSearchOptions search_options(bool reuse, std::size_t threads) {
  GridSearchOptions options;
  options.cv_folds = 5;
  options.reuse = reuse;
  options.threads = threads;
  return options;
}

/// Best-of-`repeats` wall time of one full grid_search, in ms.
double time_search_ms(const ClassifierGridSpec& spec, const Dataset& ds,
                      const GridSearchOptions& options, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const GridSearchResult result = grid_search(spec, ds, options, 7);
    const auto t1 = std::chrono::steady_clock::now();
    if (result.n_configs == 0) std::abort();  // keep the search observable
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct Row {
  std::string name;
  double fast_ms = 0.0;
  double reference_ms = 0.0;
  double speedup() const { return fast_ms > 0.0 ? reference_ms / fast_ms : 0.0; }
};

/// Pull "speedup_vs_reference" for `name` out of the (small, known-shape)
/// baseline JSON without a JSON library.  Returns 0 when absent.
double baseline_speedup(const std::string& json, const std::string& name) {
  const std::string anchor = "\"name\": \"" + name + "\"";
  std::size_t at = json.find(anchor);
  if (at == std::string::npos) return 0.0;
  const std::string key = "\"speedup_vs_reference\":";
  at = json.find(key, at);
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_model_selection.json";
  std::string baseline_path;
  double check_factor = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else if (arg == "--baseline" && i + 1 < argc) baseline_path = argv[++i];
    else if (arg == "--check-regression" && i + 1 < argc)
      check_factor = std::strtod(argv[++i], nullptr);
  }

  const Dataset ds = workload();
  const ClassifierGridSpec spec = tree_grid();

  // Exact-equivalence gate before any timing: every mode must produce the
  // same winner and the same score, to the bit.
  const GridSearchResult reference = grid_search(spec, ds, search_options(false, 1), 7);
  for (const bool reuse : {false, true}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const GridSearchResult run = grid_search(spec, ds, search_options(reuse, threads), 7);
      if (run.best_params.to_string() != reference.best_params.to_string() ||
          run.best_cv_f_score != reference.best_cv_f_score) {
        std::cerr << "EQUIVALENCE FAILURE at reuse=" << reuse << " threads=" << threads
                  << ": " << run.best_params.to_string() << " ("
                  << run.best_cv_f_score << ") vs " << reference.best_params.to_string()
                  << " (" << reference.best_cv_f_score << ")\n";
        return 2;
      }
    }
  }
  std::cout << "equivalence check passed: winner " << reference.best_params.to_string()
            << " f=" << reference.best_cv_f_score << " in every mode\n";

  std::vector<Row> rows;
  {
    // State reuse at one thread: shared folds + shared presorts vs the
    // pre-engine per-config rebuild.
    Row row;
    row.name = "grid_search/decision_tree";
    row.fast_ms = time_search_ms(spec, ds, search_options(true, 1), 5);
    row.reference_ms = time_search_ms(spec, ds, search_options(false, 1), 3);
    rows.push_back(row);
  }
  {
    // Parallel scaling on top of reuse: 4 workers vs 1 (bounded by host
    // cores; see header note).
    Row row;
    row.name = "grid_search/decision_tree_threads4";
    row.fast_ms = time_search_ms(spec, ds, search_options(true, 4), 5);
    row.reference_ms = rows[0].fast_ms;
    rows.push_back(row);
  }
  for (const Row& row : rows) {
    std::cout << row.name << ": fast " << row.fast_ms << " ms, reference "
              << row.reference_ms << " ms, speedup " << row.speedup() << "x\n";
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"model_selection\",\n"
       << "  \"workload\": {\"n_samples\": " << ds.n_samples()
       << ", \"n_features\": " << ds.n_features()
       << ", \"n_configs\": " << reference.n_configs << ", \"cv_folds\": 5},\n"
       << "  \"host_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << "    {\"name\": \"" << rows[i].name << "\", \"fast_ms\": " << rows[i].fast_ms
         << ", \"reference_ms\": " << rows[i].reference_ms
         << ", \"speedup_vs_reference\": " << rows[i].speedup() << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream out(out_path);
  out << json.str();
  out.close();
  std::cout << "wrote " << out_path << "\n";

  if (!baseline_path.empty() && check_factor > 0.0) {
    std::ifstream in(baseline_path);
    if (!in.good()) {
      std::cerr << "baseline missing: " << baseline_path << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    int failures = 0;
    for (const Row& row : rows) {
      const double expected = baseline_speedup(baseline, row.name);
      if (expected <= 0.0) continue;
      const double floor = expected / check_factor;
      if (row.speedup() < floor) {
        std::cerr << "REGRESSION " << row.name << ": speedup " << row.speedup()
                  << "x below floor " << floor << "x (baseline " << expected
                  << "x / factor " << check_factor << ")\n";
        ++failures;
      }
    }
    if (failures > 0) return 1;
    std::cout << "regression check passed (factor " << check_factor << ")\n";
  }
  return 0;
}
