// Micro-benchmarks: train and predict throughput of every registry
// classifier on a fixed synthetic workload.  Not a paper figure — this
// documents the cost model behind the measurement harness.
//
// Three modes:
//   (default)       google-benchmark train/predict loops over every
//                   classifier at the 400x16 workload (all benchmark flags
//                   accepted).
//   --json          perf-regression harness for the tree-family training
//                   kernel: times each tree-family classifier's fit() at
//                   n=2000, d=30 under both the presort kernel and
//                   ReferenceTreeBuilder and writes machine-independent
//                   speedup ratios to a JSON file.
//   --json-predict  same harness shape for the batched prediction kernels:
//                   fits each model once, then times predict() on a 4000-row
//                   query batch under PredictKernel::kFlat vs kReference and
//                   writes BENCH_predict.json.
//
// JSON-mode flags (shared by --json and --json-predict):
//   --out FILE               output path (default BENCH_tree_training.json /
//                            BENCH_predict.json)
//   --baseline FILE          committed baseline with expected speedups
//   --check-regression F     exit 1 if any speedup drops below
//                            baseline_speedup / F
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "data/generators.h"
#include "ml/classifier.h"
#include "ml/registry.h"
#include "ml/tree/trainer.h"

namespace {

using namespace mlaas;

const Dataset& workload() {
  static const Dataset ds = [] {
    MakeClassificationOptions opt;
    opt.n_samples = 400;
    opt.n_features = 16;
    opt.n_informative = 6;
    opt.n_redundant = 4;
    opt.n_clusters_per_class = 2;
    opt.class_sep = 1.2;
    return make_classification(opt, 42);
  }();
  return ds;
}

void BM_Train(benchmark::State& state, const std::string& name) {
  const Dataset& ds = workload();
  for (auto _ : state) {
    auto clf = make_classifier(name, {}, 1);
    clf->fit(ds.x(), ds.y());
    benchmark::DoNotOptimize(clf);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(ds.n_samples()));
}

void BM_Predict(benchmark::State& state, const std::string& name) {
  const Dataset& ds = workload();
  auto clf = make_classifier(name, {}, 1);
  clf->fit(ds.x(), ds.y());
  for (auto _ : state) {
    auto labels = clf->predict(ds.x());
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(ds.n_samples()));
}

const int registered = [] {
  for (const auto& name : classifier_names()) {
    benchmark::RegisterBenchmark(("train/" + name).c_str(),
                                 [name](benchmark::State& s) { BM_Train(s, name); });
    benchmark::RegisterBenchmark(("predict/" + name).c_str(),
                                 [name](benchmark::State& s) { BM_Predict(s, name); });
  }
  return 0;
}();

// ---------------------------------------------------------------------------
// --json mode: tree-training perf harness.

struct TreeBenchCase {
  const char* label;       // row name in the JSON (unique)
  const char* classifier;  // registry name
  ParamMap params;         // overrides on top of registry defaults
};

/// Registry defaults for the whole family, plus an all-features forest:
/// with sqrt feature sampling the reference builder only sorts ~sqrt(d)
/// small columns per node, so the presort win there is bounded by the
/// shared fold/partition work; the all-features row shows the kernel's
/// effect when split scans touch every column (the boosting/full-tree
/// regime).  See DESIGN.md "Training kernels".
const std::vector<TreeBenchCase>& tree_cases() {
  static const std::vector<TreeBenchCase> cases = {
      {"decision_tree", "decision_tree", {}},
      {"random_forest", "random_forest", {}},
      {"random_forest_all_features",
       "random_forest",
       {{"max_features", std::string("all")}}},
      {"bagging", "bagging", {}},
      {"boosted_trees", "boosted_trees", {}},
      {"decision_jungle", "decision_jungle", {}},
  };
  return cases;
}

Dataset tree_workload() {
  MakeClassificationOptions opt;
  opt.n_samples = 2000;
  opt.n_features = 30;
  opt.n_informative = 10;
  opt.n_redundant = 6;
  opt.n_clusters_per_class = 2;
  opt.class_sep = 1.0;
  return make_classification(opt, 42);
}

/// Best-of-`repeats` wall time of fit() under the given builder, in ms.
double time_fit_ms(const TreeBenchCase& c, const Dataset& ds, TreeBuilder builder,
                   int repeats) {
  set_active_tree_builder(builder);
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    auto clf = make_classifier(c.classifier, c.params, 1);
    const auto t0 = std::chrono::steady_clock::now();
    clf->fit(ds.x(), ds.y());
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  set_active_tree_builder(TreeBuilder::kFast);
  return best;
}

struct TreeBenchRow {
  std::string name;
  double fast_ms = 0.0;
  double reference_ms = 0.0;
  double speedup() const { return fast_ms > 0.0 ? reference_ms / fast_ms : 0.0; }
};

/// Pull "speedup_vs_reference" for `name` out of the (small, known-shape)
/// baseline JSON without a JSON library.  Returns 0 when absent.
double baseline_speedup(const std::string& json, const std::string& name) {
  const std::string anchor = "\"name\": \"" + name + "\"";
  std::size_t at = json.find(anchor);
  if (at == std::string::npos) return 0.0;
  const std::string key = "\"speedup_vs_reference\":";
  at = json.find(key, at);
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + key.size(), nullptr);
}

int run_json_mode(const std::vector<std::string>& args) {
  std::string out_path = "BENCH_tree_training.json";
  std::string baseline_path;
  double check_factor = 0.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) out_path = args[++i];
    else if (args[i] == "--baseline" && i + 1 < args.size()) baseline_path = args[++i];
    else if (args[i] == "--check-regression" && i + 1 < args.size())
      check_factor = std::strtod(args[++i].c_str(), nullptr);
  }

  const Dataset ds = tree_workload();
  std::vector<TreeBenchRow> rows;
  for (const auto& c : tree_cases()) {
    TreeBenchRow row;
    row.name = c.label;
    row.fast_ms = time_fit_ms(c, ds, TreeBuilder::kFast, 5);
    row.reference_ms = time_fit_ms(c, ds, TreeBuilder::kReference, 3);
    rows.push_back(row);
    std::cout << row.name << ": fast " << row.fast_ms << " ms, reference "
              << row.reference_ms << " ms, speedup " << row.speedup() << "x\n";
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"tree_training\",\n"
       << "  \"workload\": {\"n_samples\": " << ds.n_samples()
       << ", \"n_features\": " << ds.n_features() << "},\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << "    {\"name\": \"" << rows[i].name << "\", \"fast_ms\": " << rows[i].fast_ms
         << ", \"reference_ms\": " << rows[i].reference_ms
         << ", \"speedup_vs_reference\": " << rows[i].speedup() << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream out(out_path);
  out << json.str();
  out.close();
  std::cout << "wrote " << out_path << "\n";

  if (!baseline_path.empty() && check_factor > 0.0) {
    std::ifstream in(baseline_path);
    if (!in.good()) {
      std::cerr << "baseline missing: " << baseline_path << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    int failures = 0;
    for (const auto& row : rows) {
      const double expected = baseline_speedup(baseline, row.name);
      if (expected <= 0.0) continue;
      const double floor = expected / check_factor;
      if (row.speedup() < floor) {
        std::cerr << "REGRESSION " << row.name << ": speedup " << row.speedup()
                  << "x below floor " << floor << "x (baseline " << expected
                  << "x / factor " << check_factor << ")\n";
        ++failures;
      }
    }
    if (failures > 0) return 1;
    std::cout << "regression check passed (factor " << check_factor << ")\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --json-predict mode: batched-prediction perf harness.

/// Models timed by the predict harness.  The tree-ensemble rows gate the
/// FlatForest walk, knn/rbf_svm gate the blocked distance kernels, the rest
/// document the linear/MLP matvec path.
const std::vector<TreeBenchCase>& predict_cases() {
  static const std::vector<TreeBenchCase> cases = {
      {"decision_tree", "decision_tree", {}},
      {"random_forest", "random_forest", {}},
      {"bagging", "bagging", {}},
      {"boosted_trees", "boosted_trees", {}},
      {"decision_jungle", "decision_jungle", {}},
      {"knn", "knn", {}},
      {"rbf_svm", "rbf_svm", {}},
      {"mlp", "mlp", {}},
      {"logistic_regression", "logistic_regression", {}},
  };
  return cases;
}

/// Query batch for the predict harness: same feature geometry as
/// tree_workload(), different seed so queries are not training points.
Dataset predict_queries() {
  MakeClassificationOptions opt;
  opt.n_samples = 4000;
  opt.n_features = 30;
  opt.n_informative = 10;
  opt.n_redundant = 6;
  opt.n_clusters_per_class = 2;
  opt.class_sep = 1.0;
  return make_classification(opt, 43);
}

/// Best-of-`repeats` wall time of predict() under the given kernel, in ms.
double time_predict_ms(const Classifier& clf, const Matrix& x, PredictKernel kernel,
                       int repeats) {
  set_active_predict_kernel(kernel);
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    auto labels = clf.predict(x);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(labels);
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  set_active_predict_kernel(PredictKernel::kFlat);
  return best;
}

int run_predict_json_mode(const std::vector<std::string>& args) {
  std::string out_path = "BENCH_predict.json";
  std::string baseline_path;
  double check_factor = 0.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) out_path = args[++i];
    else if (args[i] == "--baseline" && i + 1 < args.size()) baseline_path = args[++i];
    else if (args[i] == "--check-regression" && i + 1 < args.size())
      check_factor = std::strtod(args[++i].c_str(), nullptr);
  }

  const Dataset train = tree_workload();
  const Dataset queries = predict_queries();
  std::vector<TreeBenchRow> rows;
  for (const auto& c : predict_cases()) {
    auto clf = make_classifier(c.classifier, c.params, 1);
    clf->fit(train.x(), train.y());
    TreeBenchRow row;
    row.name = c.label;
    // Flat is the default; one warm-up pass populates scratch buffers before
    // either side is timed.
    time_predict_ms(*clf, queries.x(), PredictKernel::kFlat, 1);
    row.fast_ms = time_predict_ms(*clf, queries.x(), PredictKernel::kFlat, 5);
    row.reference_ms = time_predict_ms(*clf, queries.x(), PredictKernel::kReference, 3);
    rows.push_back(row);
    std::cout << row.name << ": flat " << row.fast_ms << " ms, reference "
              << row.reference_ms << " ms, speedup " << row.speedup() << "x\n";
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"predict\",\n"
       << "  \"workload\": {\"n_train\": " << train.n_samples()
       << ", \"n_queries\": " << queries.n_samples()
       << ", \"n_features\": " << train.n_features() << "},\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << "    {\"name\": \"" << rows[i].name << "\", \"flat_ms\": " << rows[i].fast_ms
         << ", \"reference_ms\": " << rows[i].reference_ms
         << ", \"speedup_vs_reference\": " << rows[i].speedup() << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream out(out_path);
  out << json.str();
  out.close();
  std::cout << "wrote " << out_path << "\n";

  if (!baseline_path.empty() && check_factor > 0.0) {
    std::ifstream in(baseline_path);
    if (!in.good()) {
      std::cerr << "baseline missing: " << baseline_path << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    int failures = 0;
    for (const auto& row : rows) {
      const double expected = baseline_speedup(baseline, row.name);
      if (expected <= 0.0) continue;
      const double floor = expected / check_factor;
      if (row.speedup() < floor) {
        std::cerr << "REGRESSION " << row.name << ": speedup " << row.speedup()
                  << "x below floor " << floor << "x (baseline " << expected
                  << "x / factor " << check_factor << ")\n";
        ++failures;
      }
    }
    if (failures > 0) return 1;
    std::cout << "regression check passed (factor " << check_factor << ")\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      std::vector<std::string> args(argv + 1, argv + argc);
      return run_json_mode(args);
    }
    if (std::string(argv[i]) == "--json-predict") {
      std::vector<std::string> args(argv + 1, argv + argc);
      return run_predict_json_mode(args);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
