// Micro-benchmarks (google-benchmark): train and predict throughput of every
// registry classifier on a fixed synthetic workload.  Not a paper figure —
// this documents the cost model behind the measurement harness.
#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "ml/registry.h"

namespace {

using namespace mlaas;

const Dataset& workload() {
  static const Dataset ds = [] {
    MakeClassificationOptions opt;
    opt.n_samples = 400;
    opt.n_features = 16;
    opt.n_informative = 6;
    opt.n_redundant = 4;
    opt.n_clusters_per_class = 2;
    opt.class_sep = 1.2;
    return make_classification(opt, 42);
  }();
  return ds;
}

void BM_Train(benchmark::State& state, const std::string& name) {
  const Dataset& ds = workload();
  for (auto _ : state) {
    auto clf = make_classifier(name, {}, 1);
    clf->fit(ds.x(), ds.y());
    benchmark::DoNotOptimize(clf);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(ds.n_samples()));
}

void BM_Predict(benchmark::State& state, const std::string& name) {
  const Dataset& ds = workload();
  auto clf = make_classifier(name, {}, 1);
  clf->fit(ds.x(), ds.y());
  for (auto _ : state) {
    auto labels = clf->predict(ds.x());
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(ds.n_samples()));
}

const int registered = [] {
  for (const auto& name : classifier_names()) {
    benchmark::RegisterBenchmark(("train/" + name).c_str(),
                                 [name](benchmark::State& s) { BM_Train(s, name); });
    benchmark::RegisterBenchmark(("predict/" + name).c_str(),
                                 [name](benchmark::State& s) { BM_Predict(s, name); });
  }
  return 0;
}();

}  // namespace

BENCHMARK_MAIN();
