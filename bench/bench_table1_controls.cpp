// Table 1: the control surface of each platform — feature-selection
// methods, classifiers, and the tunable parameters of each classifier.
// Also reproduces Figure 1's pipeline-step checkmarks.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Table 1 / Figure 1: platform control surfaces", opt);

  TextTable steps({"Platform", "Preproc+FeatSel", "Classifier choice", "Param tuning"});
  for (const auto& name : platform_names()) {
    const ControlSurface s = make_platform(name)->controls();
    steps.add_row({name, s.feature_selection ? "yes" : "-",
                   s.classifier_choice ? "yes" : "-", s.parameter_tuning ? "yes" : "-"});
  }
  std::cout << "Figure 1: pipeline steps exposed per platform\n" << steps.str() << "\n";

  for (const auto& name : platform_names()) {
    const ControlSurface s = make_platform(name)->controls();
    if (s.classifiers.empty()) {
      std::cout << name << ": fully automated (1-click), no controls\n\n";
      continue;
    }
    std::cout << name << "\n";
    if (s.feature_selection) {
      std::cout << "  FEAT: ";
      for (std::size_t i = 0; i < s.feature_steps.size(); ++i) {
        std::cout << (i ? ", " : "") << s.feature_steps[i];
      }
      std::cout << "\n";
    }
    TextTable t({"Classifier", "#params", "Parameter list (PARA)"});
    for (const auto& spec : s.classifiers) {
      std::string params;
      for (std::size_t i = 0; i < spec.params.size(); ++i) {
        params += (i ? ", " : "") + spec.params[i].name;
      }
      t.add_row({spec.classifier, std::to_string(spec.params.size()), params});
    }
    std::cout << t.str() << "\n";
  }
  return 0;
}
