// Extension: budget-limited AutoML vs exhaustive search (§7's Auto-WEKA /
// Auto-sklearn direction applied to the MLaaS setting).
//
// On a corpus slice, auto_tune() races random configurations of the most
// configurable platforms with successive halving under a small training
// budget; its result is compared against the baseline and the exhaustive
// "optimized" reference from the shared measurement cache.  The paper's
// §5.2 found 3 random classifiers are nearly enough — this quantifies the
// same effect for full configurations under an explicit budget.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "data/split.h"
#include "eval/auto_tune.h"
#include "ml/metrics.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Extension: budget-limited AutoML vs exhaustive grids", opt);
  Study study(opt);
  const auto& table = study.measurements();

  // A deterministic slice keeps the on-the-fly tuning affordable.
  const std::size_t slice = opt.quick ? 8 : 24;
  const auto& corpus = study.corpus();
  Rng rng(derive_seed(opt.seed, "automl-slice"));
  auto picks = rng.sample_without_replacement(corpus.size(), std::min(slice, corpus.size()));

  for (const auto* platform_name : {"Microsoft", "Local"}) {
    const auto platform = make_platform(platform_name);
    const std::size_t grid_size =
        enumerate_configs(*platform, opt.measurement_options()).size();
    double baseline_sum = 0, tuned_sum = 0, exhaustive_sum = 0;
    std::size_t n = 0, total_evals = 0;
    for (const auto i : picks) {
      const Dataset& ds = corpus[i];
      const auto split = train_test_split(
          ds, 0.3, derive_seed(opt.seed, "split-" + ds.meta().id), true);

      const auto baseline = platform->train(split.train, platform->baseline_config(), 1);
      baseline_sum += f1_score(split.test.y(), baseline->predict(split.test.x()));

      AutoTuneOptions tune;
      tune.budget = 40;
      tune.seed = derive_seed(opt.seed, "automl-" + ds.meta().id);
      const AutoTuneResult result = auto_tune(*platform, split.train, tune);
      total_evals += static_cast<std::size_t>(result.evaluations);
      const auto tuned = platform->train(split.train, result.best_config, 1);
      tuned_sum += f1_score(split.test.y(), tuned->predict(split.test.x()));

      // Exhaustive reference from the shared measurement cache.
      double best = 0.0;
      for (const auto& m : table.rows()) {
        if (m.platform == platform_name && m.dataset_id == ds.meta().id) {
          best = std::max(best, m.test.f_score);
        }
      }
      exhaustive_sum += best;
      ++n;
    }
    const double dn = static_cast<double>(std::max<std::size_t>(1, n));
    TextTable t({"Policy", "Avg F", "Train calls/dataset"});
    t.add_row({"Baseline (zero tuning)", fmt(baseline_sum / dn), "1"});
    t.add_row({"AutoML (budget 40, halving)", fmt(tuned_sum / dn),
               fmt(static_cast<double>(total_evals) / dn, 1)});
    t.add_row({"Exhaustive grid (paper's optimized)", fmt(exhaustive_sum / dn),
               std::to_string(grid_size)});
    std::cout << platform_name << " on " << n << " datasets:\n" << t.str() << "\n";
  }
  std::cout << "Reading: a ~40-call validation-selected budget recovers a large share of\n"
               "the exhaustive grid's gain (note: the exhaustive reference selects on the\n"
               "TEST set, as the paper's optimized number does, so it is an upper bound) —\n"
               "the §5.2 partial-knowledge result extended to full configurations.\n";
  return 0;
}
