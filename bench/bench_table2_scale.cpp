// Table 2: scale of the measurements — feature selections, classifiers,
// parameters, and the total number of (dataset x configuration)
// measurements per platform at the current --scale.
#include <iostream>

#include "bench_common.h"
#include "eval/measurement.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Table 2: scale of the measurements", opt);
  Study study(opt);
  const std::size_t n_datasets = study.corpus().size();
  const MeasurementOptions mopt = opt.measurement_options();

  TextTable t({"Platform", "#FeatSel", "#Classifiers", "#Params swept",
               "#Configs/dataset", "#Measurements"});
  std::size_t grand_total = 0;
  for (const auto& platform : study.platforms()) {
    const ControlSurface s = platform->controls();
    std::size_t n_params = 0;
    for (const auto& spec : s.classifiers) n_params += spec.params.size();
    const auto configs = enumerate_configs(*platform, mopt);
    const std::size_t total = configs.size() * n_datasets;
    grand_total += total;
    t.add_row({platform->name(), std::to_string(s.feature_steps.size()),
               std::to_string(s.classifiers.size()), std::to_string(n_params),
               std::to_string(configs.size()), std::to_string(total)});
  }
  t.add_rule();
  t.add_row({"Total", "", "", "", "", std::to_string(grand_total)});
  std::cout << t.str()
            << "\n(paper scale: 2.1M measurements on Microsoft+Local alone; use --scale to"
               " grow the grids toward it)\n";
  return 0;
}
