// Extension (paper §8 future work: "robustness to incorrect input"):
// baseline platform performance as training labels are corrupted.
//
// For each noise level, a fraction of training labels is flipped before
// upload; test labels stay clean.  The automated platforms' hidden
// model selection and the configurable platforms' defaults degrade at
// different rates — the robustness axis the paper deferred.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "data/split.h"
#include "ml/metrics.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Extension: robustness to label noise (paper §8 future work)", opt);
  Study study(opt);
  const auto& corpus = study.corpus();
  const double noise_levels[] = {0.0, 0.05, 0.15, 0.30};

  // A corpus slice keeps this bench self-contained and fast.
  const std::size_t slice = opt.quick ? 10 : 40;
  Rng slice_rng(derive_seed(opt.seed, "noise-slice"));
  const auto picks =
      slice_rng.sample_without_replacement(corpus.size(), std::min(slice, corpus.size()));

  std::map<std::string, std::map<double, double>> avg_f;  // platform -> noise -> F
  const auto platforms = make_all_platforms();
  for (const auto i : picks) {
    const Dataset& ds = corpus[i];
    const auto split =
        train_test_split(ds, 0.3, derive_seed(opt.seed, "split-" + ds.meta().id), true);
    for (const double noise : noise_levels) {
      Dataset noisy = split.train;
      Rng rng(derive_seed(opt.seed, ds.meta().id + std::to_string(noise)));
      for (auto& y : noisy.y()) {
        if (rng.chance(noise)) y = 1 - y;
      }
      for (const auto& platform : platforms) {
        try {
          const auto model = platform->train(noisy, platform->baseline_config(),
                                             derive_seed(opt.seed, platform->name()));
          avg_f[platform->name()][noise] +=
              f1_score(split.test.y(), model->predict(split.test.x()));
        } catch (const std::exception&) {
          // single-class after flipping (tiny datasets): skip, count as 0
        }
      }
    }
  }

  std::vector<std::string> header{"Platform (complexity ->)"};
  for (const double n : noise_levels) header.push_back(fmt_pct(n, 0) + " noise");
  header.push_back("F drop @30%");
  TextTable t(std::move(header));
  const double dn = static_cast<double>(picks.size());
  for (const auto& name : study.platform_order()) {
    std::vector<std::string> row{name};
    const double clean = avg_f[name][0.0] / dn;
    for (const double n : noise_levels) row.push_back(fmt(avg_f[name][n] / dn));
    row.push_back(fmt_pct(clean > 0 ? (clean - avg_f[name][0.30] / dn) / clean : 0.0));
    t.add_row(std::move(row));
  }
  std::cout << t.str()
            << "\nReading: ensemble/regularized defaults degrade gracefully; the\n"
               "black boxes' internal CV race can misfire once noise blurs the\n"
               "linear/non-linear gap.\n";
  return 0;
}
