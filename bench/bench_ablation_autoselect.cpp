// Ablation (beyond the paper): how much does the black-box platforms'
// hidden linear/non-linear auto-selection actually buy them?  We compare
// the simulated Google/ABM pipelines against fixed-linear and
// fixed-non-linear variants over a corpus slice.
#include <iostream>

#include "bench_common.h"
#include "data/split.h"
#include "platform/auto_select.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace mlaas;

double avg_f(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += x;
  return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Ablation: value of black-box classifier auto-selection", opt);
  Study study(opt);
  const auto& corpus = study.corpus();

  std::vector<double> auto_f, linear_f, nonlinear_f, oracle_f;
  for (const auto& ds : corpus) {
    const auto split = train_test_split(ds, 0.3, derive_seed(opt.seed, ds.meta().id), true);
    auto eval = [&](const std::string& clf, const ParamMap& params) {
      auto model = make_classifier(clf, params, derive_seed(opt.seed, clf + ds.meta().id));
      model->fit(split.train.x(), split.train.y());
      return f1_score(split.test.y(), model->predict(split.test.x()));
    };
    const double lin = eval("logistic_regression", ParamMap{{"max_iter", 100LL}});
    const double non = eval("rbf_svm", ParamMap{{"max_iter", 20LL}});
    AutoSelectOptions as;
    const auto choice = auto_select_family(split.train, as, derive_seed(opt.seed, "ab"));
    auto_f.push_back(choice.family == ClassifierFamily::kLinear ? lin : non);
    linear_f.push_back(lin);
    nonlinear_f.push_back(non);
    oracle_f.push_back(std::max(lin, non));
  }

  TextTable t({"Policy", "Avg F-score"});
  t.add_row({"Always linear (LR)", fmt(avg_f(linear_f))});
  t.add_row({"Always non-linear (RBF-SVM)", fmt(avg_f(nonlinear_f))});
  t.add_row({"Auto-select (CV race, hidden)", fmt(avg_f(auto_f))});
  t.add_row({"Oracle (test-set best of the two)", fmt(avg_f(oracle_f))});
  std::cout << t.str()
            << "\nAuto-selection should beat both fixed policies and trail the oracle —\n"
               "the §6 finding that black-box optimization helps but errs on some "
               "datasets.\n";
  return 0;
}
