// Figure 12: validation performance of the per-dataset classifier-family
// predictors (§6.2).  The paper found 64/119 datasets with validation
// F-score > 0.95; those "selected" datasets power the black-box inference.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Figure 12: family-predictor validation performance", opt);
  Study study(opt);
  const auto report = study.family_predictors();

  std::vector<double> validation, test;
  std::size_t trainable = 0;
  for (const auto& p : report.predictors) {
    if (!p.trainable) continue;
    ++trainable;
    validation.push_back(p.validation_f);
    test.push_back(p.test_f);
  }
  std::cout << "Figure 12: CDF of validation F-score across " << trainable
            << " trainable meta-datasets\n"
            << render_cdf(validation, 15, "valF") << "\n";
  std::cout << "Selected datasets (validation F > 0.95): " << report.selected.size() << " / "
            << report.predictors.size() << " (paper: 64 / 119)\n";

  // Paper check: selected predictors generalize (test F > 0.96 in paper).
  std::size_t generalize = 0;
  for (const auto& p : report.predictors) {
    for (const auto& id : report.selected) {
      if (p.dataset_id == id && p.test_f > 0.9) ++generalize;
    }
  }
  std::cout << "Selected predictors with held-out test F > 0.9: " << generalize << " / "
            << report.selected.size() << "\n";
  return 0;
}
