// Figure 6: performance variation across all configurations per platform
// (the "risk" axis of the complexity/performance tradeoff, §5.1).
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Figure 6: performance variation across configurations", opt);
  Study study(opt);
  const auto variations = study.variation_fig6();
  std::cout << render_fig6(variations) << "\n";

  // Paper shape: range grows with complexity (Local/Microsoft widest).
  double local = 0, microsoft = 0, amazon = 0;
  for (const auto& v : variations) {
    if (v.platform == "Local") local = v.range();
    if (v.platform == "Microsoft") microsoft = v.range();
    if (v.platform == "Amazon") amazon = v.range();
  }
  std::cout << "Shape checks: range(Local) >= range(Microsoft) >= range(Amazon): "
            << (local >= microsoft && microsoft >= amazon ? "yes" : "partial") << "\n";
  return 0;
}
