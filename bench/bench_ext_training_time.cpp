// Extension (paper §8 future work): the training-time dimension of the
// MLaaS comparison.  For each platform: baseline training cost, the cost
// distribution across all configurations, and the cost of its optimized
// (best-F) configurations — the time/performance tradeoff the paper left
// unexplored.  Training cost is per-thread CPU seconds
// (CLOCK_THREAD_CPUTIME_ID), so the numbers are comparable across
// --threads values and schedules rather than inflated by pool
// oversubscription.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "linalg/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Extension: training-time dimension (paper §8 future work)", opt);
  Study study(opt);
  const auto& table = study.measurements();

  TextTable t({"Platform", "Baseline s/train", "Median s/train", "P90 s/train",
               "Best-F config s/train", "Optimized F"});
  for (const auto& platform : study.platform_order()) {
    const MeasurementTable rows = table.for_platform(platform);
    if (rows.empty()) continue;
    std::vector<double> all_secs;
    for (const auto& m : rows.rows()) all_secs.push_back(m.train_seconds);
    const MeasurementTable base = rows.baseline();
    std::vector<double> base_secs;
    for (const auto& m : base.rows()) base_secs.push_back(m.train_seconds);

    // Cost and quality of the per-dataset best-F configurations.
    double best_secs = 0.0, best_f = 0.0;
    const auto best = rows.best_per_dataset();
    for (const auto* m : best) {
      best_secs += m->train_seconds;
      best_f += m->test.f_score;
    }
    const double n_best = static_cast<double>(std::max<std::size_t>(1, best.size()));

    t.add_row({platform, fmt(base_secs.empty() ? 0.0 : mean(base_secs), 4),
               fmt(quantile(all_secs, 0.5), 4), fmt(quantile(all_secs, 0.9), 4),
               fmt(best_secs / n_best, 4), fmt(best_f / n_best)});
  }
  std::cout << t.str()
            << "\nReading: complex platforms buy their higher optimized F-score with "
               "longer\n(and more variable) training times — the cost axis the paper "
               "deferred.\n";
  return 0;
}
