// Figure 8: expected best F-score when exploring a random subset of k
// classifiers (§5.2's partial-knowledge analysis).
#include <iostream>

#include "bench_common.h"
#include "eval/report.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Figure 8: performance vs number of classifiers explored", opt);
  Study study(opt);
  const auto curves = study.subset_curves();
  std::cout << render_fig8(curves) << "\n";

  // Paper shape: k=3 recovers most of the full-roster optimum.
  for (const auto& curve : curves) {
    if (curve.points.size() < 3) continue;
    const double k3 = curve.points[2].expected_best_f;
    const double all = curve.points.back().expected_best_f;
    std::cout << curve.platform << ": best-of-3 reaches " << fmt_pct(all > 0 ? k3 / all : 0)
              << " of the all-classifier optimum\n";
  }
  return 0;
}
