// Extension: the measurement campaign as an operational system.
//
// The paper's experiments ran from October 2016 to February 2017 (§3.2)
// against rate-limited web APIs that threw transient errors and enforced
// quotas.  Since the campaign runner goes through the simulated service
// layer, this bench reports the campaign the way an SRE would: per-platform
// request/retry/rate-limit telemetry, simulated campaign wall-clock, cell
// coverage, and how injected fault rates degrade corpus coverage even with
// exponential-backoff retries.
//
// Flags beyond the common set: --fault-rate F, --quota-profile
// {default,strict,free-tier,unlimited}, --retry-budget K.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "eval/measurement.h"
#include "platform/service.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Extension: service-backed measurement campaign", opt);
  Study study(opt);
  const MeasurementOptions mopt = opt.measurement_options();

  // ---- Main campaign: the study corpus through the service layer. ----
  const CampaignResult result = run_campaign(study.corpus(), study.platforms(), mopt);

  TextTable t({"Platform", "Cells ok/failed", "Requests", "Retries", "Rate-limited",
               "Faults", "Backoff", "Simulated", "Train"});
  for (const auto& p : result.report.platforms) {
    t.add_row({p.platform,
               std::to_string(p.cells_ok) + "/" + std::to_string(p.cells_failed),
               std::to_string(p.service.requests), std::to_string(p.retries),
               std::to_string(p.service.rate_limited),
               std::to_string(p.service.transient_errors),
               fmt(p.backoff_seconds / 3600.0, 2) + " h",
               fmt(p.simulated_seconds / 86400.0, 2) + " days",
               fmt(p.service.train_wall_seconds, 1) + " s"});
  }
  const PlatformCampaignStats total = result.report.totals();
  std::cout << t.str() << "\nCampaign: " << total.cells_ok << " cells measured, "
            << total.cells_failed << " failed, " << total.cells_rejected
            << " rejected (coverage " << fmt(100.0 * result.report.coverage(), 1)
            << "%).\nSequential simulated duration: "
            << fmt(total.simulated_seconds / 86400.0, 1) << " days at --scale "
            << opt.scale
            << " — at the paper's full grids the estimate reaches months,"
               " consistent\nwith the October-February campaign (§3.2).\n";
  for (const auto& p : result.report.platforms) {
    for (const auto& [status, count] : p.failures_by_status) {
      std::cout << "  " << p.platform << ": " << count << " x " << status << "\n";
    }
  }

  // ---- Fault-rate sweep: how failures eat corpus coverage (§8). ----
  const std::size_t sweep_n = std::min<std::size_t>(study.corpus().size(), 8);
  const std::vector<Dataset> sweep_corpus(study.corpus().begin(),
                                          study.corpus().begin() + sweep_n);
  std::cout << "\nFault-rate sweep (" << sweep_n << " datasets, retry budget "
            << mopt.campaign.retry_budget << "):\n";
  TextTable sweep({"Fault rate", "Cells ok", "Cells failed", "Coverage", "Retries"});
  for (const double rate : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    MeasurementOptions sopt = mopt;
    sopt.verbose = false;
    sopt.campaign.fault_rate = rate;
    const CampaignResult swept = run_campaign(sweep_corpus, study.platforms(), sopt);
    const PlatformCampaignStats st = swept.report.totals();
    sweep.add_row({fmt(rate, 2), std::to_string(st.cells_ok),
                   std::to_string(st.cells_failed),
                   fmt(100.0 * swept.report.coverage(), 1) + "%",
                   std::to_string(st.retries)});
  }
  std::cout << sweep.str()
            << "\nFailed cells are recorded as structured failure rows and excluded"
               " from aggregation,\nthe way the paper excluded providers whose rate"
               " limits made measurement impractical (§8).\n";

  // ---- Chaos + breakers: a hostile campaign month, survived. ----
  // Seeded outage windows, fault bursts and latency spikes hit every
  // platform on its own schedule; per-platform circuit breakers defer
  // cells instead of burning the retry budget against a dead endpoint.
  std::cout << "\nChaos schedule (--chaos-profile storm, breakers on):\n";
  MeasurementOptions copt = mopt;
  copt.verbose = false;
  copt.campaign.chaos_profile = "storm";
  copt.campaign.fault_rate = std::max(copt.campaign.fault_rate, 0.05);
  copt.campaign.breaker.enabled = true;
  const CampaignResult chaotic = run_campaign(sweep_corpus, study.platforms(), copt);
  TextTable chaos({"Platform", "Ok", "Failed", "Deferred", "Outages hit", "Breaker trips",
                   "Outage time", "Simulated"});
  for (const auto& p : chaotic.report.platforms) {
    chaos.add_row({p.platform, std::to_string(p.cells_ok), std::to_string(p.cells_failed),
                   std::to_string(p.cells_deferred), std::to_string(p.service.unavailable),
                   std::to_string(p.breaker_trips), fmt(p.outage_seconds / 3600.0, 2) + " h",
                   fmt(p.simulated_seconds / 86400.0, 2) + " days"});
  }
  const PlatformCampaignStats ct = chaotic.report.totals();
  std::cout << chaos.str() << "\nUnder the storm schedule the campaign still measured "
            << ct.cells_ok << " cells (coverage " << fmt(100.0 * chaotic.report.coverage(), 1)
            << "%); " << ct.cells_deferred
            << " cells were deferred by open breakers instead of failing slowly.\n";
  return 0;
}
