// Extension: measurement-campaign cost model.
//
// The paper's experiments ran from October 2016 to February 2017 (§3.2)
// against rate-limited web APIs.  Using the simulated service layer's
// latency/rate-limit model and Table 2's configuration counts, this bench
// estimates the wall-clock duration of the measurement campaign per
// platform — making the "5 months of measurements" operational cost the
// paper only implies into an explicit, reproducible number.
#include <iostream>

#include "bench_common.h"
#include "eval/measurement.h"
#include "platform/service.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Extension: measurement-campaign wall-clock estimate", opt);
  Study study(opt);
  const MeasurementOptions mopt = opt.measurement_options();

  // Plausible operational envelopes (requests/min, latency) per provider
  // class: big clouds are fast but strictly limited; startups are slower.
  struct Envelope {
    const char* platform;
    ServiceQuota quota;
  };
  const Envelope envelopes[] = {
      {"Google", {.requests_per_window = 100, .window_seconds = 60, .base_latency_seconds = 0.5, .per_sample_latency_seconds = 5e-4}},
      {"ABM", {.requests_per_window = 20, .window_seconds = 60, .base_latency_seconds = 2.0, .per_sample_latency_seconds = 2e-3}},
      {"Amazon", {.requests_per_window = 100, .window_seconds = 60, .base_latency_seconds = 1.0, .per_sample_latency_seconds = 5e-4}},
      {"BigML", {.requests_per_window = 60, .window_seconds = 60, .base_latency_seconds = 1.0, .per_sample_latency_seconds = 1e-3}},
      {"PredictionIO", {.requests_per_window = 60, .window_seconds = 60, .base_latency_seconds = 1.5, .per_sample_latency_seconds = 1e-3}},
      {"Microsoft", {.requests_per_window = 120, .window_seconds = 60, .base_latency_seconds = 2.0, .per_sample_latency_seconds = 1e-3}},
      {"Local", {.requests_per_window = 100000, .window_seconds = 60, .base_latency_seconds = 0.0, .per_sample_latency_seconds = 1e-5}},
  };

  const double avg_samples = 500.0;  // typical dataset size in the corpus
  TextTable t({"Platform", "#Configs/dataset", "#Requests (119 ds)", "Latency-bound",
               "Rate-limit-bound", "Campaign estimate"});
  double total_days = 0.0;
  for (const auto& e : envelopes) {
    const auto platform = make_platform(e.platform);
    const std::size_t configs = enumerate_configs(*platform, mopt).size();
    // Per dataset: 1 upload + per config (1 train + 1 predict).
    const double requests = 119.0 * (1.0 + 2.0 * static_cast<double>(configs));
    const double train_work = avg_samples * 10.0;  // service models training as 10x
    const double latency_seconds =
        requests * e.quota.base_latency_seconds +
        119.0 * static_cast<double>(configs) *
            (train_work + avg_samples) * e.quota.per_sample_latency_seconds;
    const double rate_seconds = requests / static_cast<double>(e.quota.requests_per_window) *
                                e.quota.window_seconds;
    const double campaign = std::max(latency_seconds, rate_seconds);
    total_days += campaign / 86400.0;
    t.add_row({e.platform, std::to_string(configs), fmt(requests, 0),
               fmt(latency_seconds / 3600.0, 1) + " h", fmt(rate_seconds / 3600.0, 1) + " h",
               fmt(campaign / 86400.0, 2) + " days"});
  }
  std::cout << t.str() << "\nSequential total: " << fmt(total_days, 1)
            << " days at --scale " << opt.scale
            << ".  At the paper's full grids (--scale ~100 for Microsoft/Local) the"
               " estimate\nreaches months — consistent with the paper's October-February"
               " campaign (§3.2).\n";
  return 0;
}
