// Extension: the measurement campaign as an operational system.
//
// The paper's experiments ran from October 2016 to February 2017 (§3.2)
// against rate-limited web APIs that threw transient errors and enforced
// quotas.  Since the campaign runner goes through the simulated service
// layer, this bench reports the campaign the way an SRE would: per-platform
// request/retry/rate-limit telemetry, simulated campaign wall-clock, cell
// coverage, and how injected fault rates degrade corpus coverage even with
// exponential-backoff retries.
//
// Flags beyond the common set: --fault-rate F, --quota-profile
// {default,strict,free-tier,unlimited}, --retry-budget K, --schedule
// {static,dynamic}.  The final section sweeps a skewed corpus over thread
// counts to show what the dynamic session scheduler buys on imbalanced work.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "data/generators.h"
#include "eval/measurement.h"
#include "platform/service.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Extension: service-backed measurement campaign", opt);
  Study study(opt);
  const MeasurementOptions mopt = opt.measurement_options();

  // ---- Main campaign: the study corpus through the service layer. ----
  const CampaignResult result = run_campaign(study.corpus(), study.platforms(), mopt);

  TextTable t({"Platform", "Cells ok/failed", "Requests", "Retries", "Rate-limited",
               "Faults", "Backoff", "Simulated", "Train"});
  for (const auto& p : result.report.platforms) {
    t.add_row({p.platform,
               std::to_string(p.cells_ok) + "/" + std::to_string(p.cells_failed),
               std::to_string(p.service.requests), std::to_string(p.retries),
               std::to_string(p.service.rate_limited),
               std::to_string(p.service.transient_errors),
               fmt(p.backoff_seconds / 3600.0, 2) + " h",
               fmt(p.simulated_seconds / 86400.0, 2) + " days",
               fmt(p.service.train_cpu_seconds, 1) + " s"});
  }
  const PlatformCampaignStats total = result.report.totals();
  std::cout << t.str() << "\nCampaign: " << total.cells_ok << " cells measured, "
            << total.cells_failed << " failed, " << total.cells_rejected
            << " rejected (coverage " << fmt(100.0 * result.report.coverage(), 1)
            << "%).\nSequential simulated duration: "
            << fmt(total.simulated_seconds / 86400.0, 1) << " days at --scale "
            << opt.scale
            << " — at the paper's full grids the estimate reaches months,"
               " consistent\nwith the October-February campaign (§3.2).\n";
  for (const auto& p : result.report.platforms) {
    for (const auto& [status, count] : p.failures_by_status) {
      std::cout << "  " << p.platform << ": " << count << " x " << status << "\n";
    }
  }

  // ---- Fault-rate sweep: how failures eat corpus coverage (§8). ----
  const std::size_t sweep_n = std::min<std::size_t>(study.corpus().size(), 8);
  const std::vector<Dataset> sweep_corpus(study.corpus().begin(),
                                          study.corpus().begin() + sweep_n);
  std::cout << "\nFault-rate sweep (" << sweep_n << " datasets, retry budget "
            << mopt.campaign.retry_budget << "):\n";
  TextTable sweep({"Fault rate", "Cells ok", "Cells failed", "Coverage", "Retries"});
  for (const double rate : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    MeasurementOptions sopt = mopt;
    sopt.verbose = false;
    sopt.campaign.fault_rate = rate;
    const CampaignResult swept = run_campaign(sweep_corpus, study.platforms(), sopt);
    const PlatformCampaignStats st = swept.report.totals();
    sweep.add_row({fmt(rate, 2), std::to_string(st.cells_ok),
                   std::to_string(st.cells_failed),
                   fmt(100.0 * swept.report.coverage(), 1) + "%",
                   std::to_string(st.retries)});
  }
  std::cout << sweep.str()
            << "\nFailed cells are recorded as structured failure rows and excluded"
               " from aggregation,\nthe way the paper excluded providers whose rate"
               " limits made measurement impractical (§8).\n";

  // ---- Chaos + breakers: a hostile campaign month, survived. ----
  // Seeded outage windows, fault bursts and latency spikes hit every
  // platform on its own schedule; per-platform circuit breakers defer
  // cells instead of burning the retry budget against a dead endpoint.
  std::cout << "\nChaos schedule (--chaos-profile storm, breakers on):\n";
  MeasurementOptions copt = mopt;
  copt.verbose = false;
  copt.campaign.chaos_profile = "storm";
  copt.campaign.fault_rate = std::max(copt.campaign.fault_rate, 0.05);
  copt.campaign.breaker.enabled = true;
  const CampaignResult chaotic = run_campaign(sweep_corpus, study.platforms(), copt);
  TextTable chaos({"Platform", "Ok", "Failed", "Deferred", "Outages hit", "Breaker trips",
                   "Outage time", "Simulated"});
  for (const auto& p : chaotic.report.platforms) {
    chaos.add_row({p.platform, std::to_string(p.cells_ok), std::to_string(p.cells_failed),
                   std::to_string(p.cells_deferred), std::to_string(p.service.unavailable),
                   std::to_string(p.breaker_trips), fmt(p.outage_seconds / 3600.0, 2) + " h",
                   fmt(p.simulated_seconds / 86400.0, 2) + " days"});
  }
  const PlatformCampaignStats ct = chaotic.report.totals();
  std::cout << chaos.str() << "\nUnder the storm schedule the campaign still measured "
            << ct.cells_ok << " cells (coverage " << fmt(100.0 * chaotic.report.coverage(), 1)
            << "%); " << ct.cells_deferred
            << " cells were deferred by open breakers instead of failing slowly.\n";

  // ---- Scheduler sweep: static vs dynamic dispatch on a skewed corpus. ----
  // Real corpora are skewed: the paper's datasets span two orders of
  // magnitude in size (§3.1).  Under static per-dataset chunking one big
  // dataset serializes its whole platform sweep on a single worker; the
  // dynamic scheduler spreads its sessions across the pool.  Seven small
  // datasets plus one large one is the worst case for static chunks.
  std::cout << "\nScheduler sweep (7 small + 1 large dataset, static vs dynamic):\n";
  std::vector<Dataset> skewed;
  for (std::size_t i = 0; i < 7; ++i) {
    skewed.push_back(make_blobs(150, 8, 2.0, 10.0,
                                derive_seed(opt.seed, "sched-small-" + std::to_string(i))));
    skewed.back().meta().id = "sched-small-" + std::to_string(i);
  }
  skewed.push_back(make_classification({/*n_samples=*/1200, /*n_features=*/24},
                                       derive_seed(opt.seed, "sched-large")));
  skewed.back().meta().id = "sched-large";

  TextTable sched({"Threads", "Static", "Dynamic", "Speedup", "Imbalance s/d",
                   "Balance gain", "Stolen"});
  std::string reference_table;  // masked TSV of the first run: all must match
  bool tables_identical = true;
  for (const int threads : {1, 2, 4, 8}) {
    double wall[2] = {0.0, 0.0};
    double imbalance[2] = {1.0, 1.0};
    std::size_t stolen = 0;
    for (const Schedule schedule : {Schedule::kStatic, Schedule::kDynamic}) {
      MeasurementOptions sw = mopt;
      sw.verbose = false;
      sw.threads = threads;
      sw.schedule = schedule;
      const auto t0 = std::chrono::steady_clock::now();
      const CampaignResult r = run_campaign(skewed, study.platforms(), sw);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      const std::size_t which = schedule == Schedule::kStatic ? 0 : 1;
      wall[which] = secs;
      imbalance[which] = r.report.scheduler.imbalance();
      if (schedule == Schedule::kDynamic) stolen = r.report.scheduler.sessions_stolen;
      // The scheduler must never change results: compare the table with the
      // run-dependent train-CPU column masked out.
      std::ostringstream masked;
      for (const auto& m : r.table.rows()) {
        Measurement copy = m;
        copy.train_seconds = 0.0;
        masked << measurement_row_to_tsv(copy) << '\n';
      }
      if (reference_table.empty()) {
        reference_table = masked.str();
      } else if (masked.str() != reference_table) {
        tables_identical = false;
      }
    }
    sched.add_row({std::to_string(threads), fmt(wall[0], 2) + " s", fmt(wall[1], 2) + " s",
                   fmt(wall[0] / std::max(wall[1], 1e-9), 2) + "x",
                   fmt(imbalance[0], 2) + " / " + fmt(imbalance[1], 2),
                   fmt(imbalance[0] / std::max(imbalance[1], 1e-9), 2) + "x",
                   std::to_string(stolen)});
  }
  std::cout << sched.str() << "\nMeasurement tables across all "
            << (tables_identical ? "8 runs are byte-identical" : "runs DIFFER (BUG)")
            << " (train-CPU column masked); the scheduler only moves work, never"
               " results.\nWall speedup tracks the balance gain once the machine has"
               " at least as many cores\nas workers; on fewer cores the balance-gain"
               " column is the portable signal.\n";
  return 0;
}
