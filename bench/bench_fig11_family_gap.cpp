// Figure 11 + Table 5: F-score CDFs of linear vs non-linear local
// classifiers on the CIRCLE and LINEAR probe datasets — the family
// divergence the §6.2 meta-predictor exploits.
#include <iostream>

#include "bench_common.h"
#include "linalg/stats.h"
#include "ml/registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Figure 11 / Table 5: linear vs non-linear family gap", opt);
  Study study(opt);

  // Table 5: family assignment of the local library's classifiers.
  TextTable t({"Category", "Classifiers"});
  std::string linear_list, nonlinear_list;
  for (const auto& name : classifier_names()) {
    auto& list = classifier_is_linear(name) ? linear_list : nonlinear_list;
    if (!list.empty()) list += ", ";
    list += classifier_abbrev(name);
  }
  t.add_row({"Linear", linear_list});
  t.add_row({"Non-Linear", nonlinear_list});
  std::cout << "Table 5: classifier family assignment\n" << t.str() << "\n";

  for (const bool is_circle : {true, false}) {
    Dataset probe = is_circle ? study.circle_probe() : study.linear_probe();
    const auto scores = study.family_gap(probe);
    std::cout << "Figure 11(" << (is_circle ? "a" : "b") << "): " << probe.meta().name
              << " — F-score distribution by family\n"
              << "linear family (" << scores.linear_f.size() << " experiments, mean "
              << fmt(mean(scores.linear_f)) << "):\n"
              << render_cdf(scores.linear_f, 10, "F") << "non-linear family ("
              << scores.nonlinear_f.size() << " experiments, mean "
              << fmt(mean(scores.nonlinear_f)) << "):\n"
              << render_cdf(scores.nonlinear_f, 10, "F") << "\n";
  }
  return 0;
}
