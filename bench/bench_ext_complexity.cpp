// Extension: dataset complexity vs platform behaviour (§7's complexity-
// measures literature applied to our corpus).
//
// For every corpus dataset: F1 (max Fisher ratio), N1 (boundary density)
// and L2 (best-linear-separator error), correlated with (a) the hidden
// auto-selector's family choice and (b) the baseline F-score — making the
// §6 claim ("black boxes choose by dataset characteristics") quantitative.
#include <iostream>

#include "bench_common.h"
#include "data/complexity.h"
#include "data/split.h"
#include "linalg/stats.h"
#include "platform/auto_select.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mlaas;
  const StudyOptions opt = study_options_from_cli(argc, argv);
  print_bench_header("Extension: dataset complexity vs platform behaviour", opt);
  Study study(opt);
  const auto& corpus = study.corpus();

  std::vector<double> l2s, n1s, f1s, chose_nonlinear, google_f;
  const auto& table = study.measurements();
  for (const auto& ds : corpus) {
    const auto measures = compute_complexity(ds, derive_seed(opt.seed, ds.meta().id));
    l2s.push_back(measures.linear_error_l2);
    n1s.push_back(measures.boundary_n1);
    f1s.push_back(measures.fisher_ratio_f1);

    const auto split =
        train_test_split(ds, 0.3, derive_seed(opt.seed, "split-" + ds.meta().id), true);
    const auto choice =
        auto_select_family(split.train, {}, derive_seed(opt.seed, "cx-" + ds.meta().id));
    chose_nonlinear.push_back(choice.family == ClassifierFamily::kNonLinear ? 1.0 : 0.0);

    double f = 0.0;
    for (const auto& m : table.rows()) {
      if (m.platform == "Google" && m.dataset_id == ds.meta().id) f = m.test.f_score;
    }
    google_f.push_back(f);
  }

  TextTable t({"Complexity measure", "corr(. , non-linear choice)", "corr(. , Google F)"});
  t.add_row({"L2 linear-separator error", fmt(pearson(l2s, chose_nonlinear), 2),
             fmt(pearson(l2s, google_f), 2)});
  t.add_row({"N1 boundary density", fmt(pearson(n1s, chose_nonlinear), 2),
             fmt(pearson(n1s, google_f), 2)});
  t.add_row({"F1 max Fisher ratio", fmt(pearson(f1s, chose_nonlinear), 2),
             fmt(pearson(f1s, google_f), 2)});
  std::cout << t.str()
            << "\nExpectation: the auto-selector's non-linear choices correlate with L2\n"
               "(exactly the quantity its internal race estimates), and hard datasets\n"
               "(high N1) depress the black box's F-score.\n";

  // Distribution summary of the corpus's complexity, for the record.
  std::cout << "\nCorpus complexity (median [min, max]):\n"
            << "  L2 " << fmt(quantile(l2s, 0.5)) << " [" << fmt(min_value(l2s)) << ", "
            << fmt(max_value(l2s)) << "]\n"
            << "  N1 " << fmt(quantile(n1s, 0.5)) << " [" << fmt(min_value(n1s)) << ", "
            << fmt(max_value(n1s)) << "]\n";
  return 0;
}
